// Async ingestion equivalence: the IngestPipeline's two-level
// timestamp-ordered merge must produce an event sequence — and therefore
// a match set and counters — that is a pure function of the sources,
// independent of ingest thread count, shard thread count, chunk size,
// and queue capacity, and identical to the synchronous runtimes on the
// same merged stream.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adaptive/partitioned_runtime.h"
#include "api/keyed_runtime.h"
#include "event/csv_loader.h"
#include "event/stream_source.h"
#include "event/streaming_csv_source.h"
#include "parallel/ingest_pipeline.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

// Test-local source over a raw event vector (events must be ts-ordered).
class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool Next(Event* out) override {
    if (next_ >= events_.size()) return false;
    *out = events_[next_++];
    return true;
  }
  bool ok() const override { return true; }
  std::string error() const override { return {}; }

 private:
  std::vector<Event> events_;
  size_t next_ = 0;
};

Event Ev(TypeId type, double ts, uint32_t partition, double value) {
  Event e;
  e.type = type;
  e.ts = ts;
  e.partition = partition;
  e.attrs = {value};
  return e;
}

// The merge rule the pipeline promises, in its simplest possible form:
// repeatedly take the event with the smallest (ts, source index).
EventStream ReferenceMerge(const std::vector<std::vector<Event>>& sources) {
  EventStream merged;
  std::vector<size_t> pos(sources.size(), 0);
  while (true) {
    size_t best = sources.size();
    for (size_t s = 0; s < sources.size(); ++s) {
      if (pos[s] >= sources[s].size()) continue;
      if (best == sources.size() ||
          sources[s][pos[s]].ts < sources[best][pos[best]].ts) {
        best = s;
      }
    }
    if (best == sources.size()) break;
    merged.Append(sources[best][pos[best]++]);
  }
  return merged;
}

// Splits a materialized stream into `n` raw-event stride slices.
std::vector<std::vector<Event>> StrideSlices(const EventStream& stream,
                                             size_t n) {
  std::vector<std::vector<Event>> slices(n);
  for (size_t i = 0; i < stream.size(); ++i) {
    Event e = *stream[i];
    e.serial = 0;
    e.partition_seq = 0;
    slices[i % n].push_back(std::move(e));
  }
  return slices;
}

std::vector<std::unique_ptr<StreamSource>> SourcesOf(
    const std::vector<std::vector<Event>>& slices) {
  std::vector<std::unique_ptr<StreamSource>> sources;
  for (const auto& slice : slices) {
    sources.push_back(std::make_unique<VectorSource>(slice));
  }
  return sources;
}

TEST(IngestPipelineTest, MergedSequencePreservesAppendInvariants) {
  // Two sources with interleaved and *tying* timestamps: the merged
  // sequence must equal the reference merge exactly — order, serials,
  // and per-partition sequence numbers — at every thread/chunk shape.
  std::vector<std::vector<Event>> raw = {
      {Ev(0, 1.0, 0, 1), Ev(1, 2.0, 1, 2), Ev(0, 2.0, 0, 3),
       Ev(2, 5.0, 1, 4)},
      {Ev(1, 1.0, 1, 5), Ev(2, 2.0, 0, 6), Ev(0, 4.0, 2, 7)},
      {Ev(2, 2.0, 2, 8), Ev(1, 6.0, 0, 9)},
  };
  EventStream want = ReferenceMerge(raw);
  ASSERT_EQ(want.size(), 9u);

  for (size_t threads : {1u, 2u, 3u}) {
    for (size_t chunk : {1u, 2u, 256u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " chunk=" + std::to_string(chunk));
      IngestOptions options;
      options.num_ingest_threads = threads;
      options.chunk_size = chunk;
      IngestPipeline pipeline(SourcesOf(raw), options);
      EXPECT_EQ(pipeline.num_ingest_threads(), std::min(threads, raw.size()));
      std::vector<EventPtr> got;
      IngestResult result = pipeline.Run([&](const EventPtr* run, size_t n) {
        for (size_t i = 0; i < n; ++i) {
          // Runs are same-partition by contract.
          EXPECT_EQ(run[i]->partition, run[0]->partition);
          got.push_back(run[i]);
        }
      });
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.events, want.size());
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        const Event& w = *want[i];
        const Event& g = *got[i];
        EXPECT_EQ(g.type, w.type) << i;
        EXPECT_DOUBLE_EQ(g.ts, w.ts) << i;
        EXPECT_EQ(g.partition, w.partition) << i;
        EXPECT_EQ(g.serial, w.serial) << i;
        EXPECT_EQ(g.partition_seq, w.partition_seq) << i;
        EXPECT_EQ(g.attrs, w.attrs) << i;
      }
    }
  }
}

TEST(IngestPipelineTest, QueueCapacityIsInvisible) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 1.0, 3);
  std::vector<std::vector<Event>> slices = StrideSlices(workload.stream, 3);
  EventStream want = ReferenceMerge(slices);

  for (size_t capacity : {1u, 2u, 64u}) {
    SCOPED_TRACE("capacity=" + std::to_string(capacity));
    IngestOptions options;
    options.num_ingest_threads = 2;
    options.chunk_size = 16;
    options.queue_capacity = capacity;
    IngestPipeline pipeline(SourcesOf(slices), options);
    std::vector<EventPtr> got;
    IngestResult result = pipeline.Run([&](const EventPtr* run, size_t n) {
      got.insert(got.end(), run, run + n);
    });
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i]->serial, want[i]->serial);
      EXPECT_DOUBLE_EQ(got[i]->ts, want[i]->ts);
      EXPECT_EQ(got[i]->partition_seq, want[i]->partition_seq);
    }
  }
}

TEST(IngestPipelineTest, SourceErrorStopsPipelineAndNamesSource) {
  EventTypeRegistry registry;
  registry.Register("A", {"v"});
  const EventTypeRegistry* frozen = &registry;
  std::vector<std::unique_ptr<StreamSource>> sources;
  sources.push_back(std::make_unique<StringCsvSource>(
      "type,ts,partition,v\nA,1,0,1\nA,2,0,2\n", frozen));
  sources.push_back(std::make_unique<StringCsvSource>(
      "type,ts,partition,v\nA,1,1,1\nA,bad,1,2\n", frozen));
  IngestOptions options;
  options.num_ingest_threads = 2;
  IngestPipeline pipeline(std::move(sources), options);
  uint64_t delivered = 0;
  IngestResult result = pipeline.Run(
      [&](const EventPtr*, size_t n) { delivered += n; });
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_source, 1u);
  EXPECT_NE(result.error.find("timestamp"), std::string::npos);
  EXPECT_EQ(result.events, delivered);
  // The valid prefix (everything merged before the failure) was
  // delivered; nothing after the bad row was.
  EXPECT_LE(delivered, 3u);
}

TEST(IngestPipelineTest, RegressingCustomSourceIsAnError) {
  std::vector<std::vector<Event>> raw = {
      {Ev(0, 2.0, 0, 1), Ev(0, 1.0, 0, 2)}};  // ts regresses
  IngestPipeline pipeline(SourcesOf(raw));
  IngestResult result =
      pipeline.Run([](const EventPtr*, size_t) {});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("non-decreasing"), std::string::npos);
  EXPECT_EQ(result.failed_source, 0u);
}

TEST(IngestPipelineTest, EmptySourceListIsACleanNoop) {
  IngestPipeline pipeline({});
  IngestResult result = pipeline.Run([](const EventPtr*, size_t) {
    FAIL() << "no events expected";
  });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.events, 0u);
}

TEST(KeyedEventSourceTest, ReproducesMaterializedWorkloadExactly) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 2.0, 17);
  KeyedEventSource source(6, 2.0, 17);
  Event e;
  size_t i = 0;
  while (source.Next(&e)) {
    ASSERT_LT(i, workload.stream.size());
    const Event& want = *workload.stream[i++];
    EXPECT_EQ(e.type, want.type);
    EXPECT_DOUBLE_EQ(e.ts, want.ts);
    EXPECT_EQ(e.partition, want.partition);
    EXPECT_EQ(e.attrs, want.attrs);
  }
  EXPECT_EQ(i, workload.stream.size());
}

// The acceptance matrix: async ingestion at 1/2/4 ingest threads x
// 1/2/4 shard threads drains a match sequence and summed counters
// identical to the synchronous PartitionedRuntime on the same merged
// stream.
TEST(AsyncIngestEquivalenceTest, MatchesSyncAcrossThreadMatrix) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 4.0, 11);
  const size_t kSources = 4;
  std::vector<std::vector<Event>> slices =
      StrideSlices(workload.stream, kSources);
  EventStream merged = ReferenceMerge(slices);
  ASSERT_EQ(merged.size(), workload.stream.size());

  CollectingSink ref_sink;
  PartitionedRuntime reference(workload.pattern, workload.stream,
                               workload.registry.size(), "GREEDY", &ref_sink);
  reference.ProcessStream(merged);
  reference.Finish();
  std::vector<std::string> ref_order;
  for (const Match& m : ref_sink.matches) ref_order.push_back(m.Fingerprint());
  ASSERT_GT(ref_order.size(), 0u);
  EngineCounters ref_counters = reference.TotalCounters();

  for (size_t ingest : {1u, 2u, 4u}) {
    for (size_t threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("ingest=" + std::to_string(ingest) +
                   " threads=" + std::to_string(threads));
      RuntimeOptions options;
      options.algorithm = "GREEDY";
      options.num_threads = threads;
      options.num_ingest_threads = ingest;
      options.batch_size = 64;
      CollectingSink sink;
      KeyedCepRuntime runtime(workload.pattern, workload.stream,
                              workload.registry.size(), options, &sink);
      IngestResult ingested = runtime.ProcessSourceAsync(SourcesOf(slices));
      ASSERT_TRUE(ingested.ok) << ingested.error;
      EXPECT_EQ(ingested.events, merged.size());
      runtime.Finish();

      std::vector<std::string> drain;
      for (const Match& m : sink.matches) drain.push_back(m.Fingerprint());
      EXPECT_EQ(drain, ref_order);
      EngineCounters total = runtime.TotalCounters();
      EXPECT_EQ(total.events_processed, ref_counters.events_processed);
      EXPECT_EQ(total.matches_emitted, ref_counters.matches_emitted);
      EXPECT_EQ(total.instances_created, ref_counters.instances_created);
      EXPECT_EQ(total.predicate_evals, ref_counters.predicate_evals);
    }
  }
}

TEST(AsyncIngestEquivalenceTest, SingleCsvSourceMatchesSynchronousReplay) {
  // One CSV text, two paths: LoadCsvStream + ProcessStream vs a
  // StreamingCsvSource through ProcessSourceAsync. Byte-identical
  // validation and a single source mean the merged order is the file
  // order, so matches and counters must agree exactly.
  std::string csv = "type,ts,partition,v\n";
  {
    KeyedWorkload workload = MakeKeyedWorkload(4, 2.0, 29);
    for (const EventPtr& e : workload.stream.events()) {
      const char* name = e->type == 0 ? "A" : e->type == 1 ? "B" : "C";
      csv += std::string(name) + "," + std::to_string(e->ts) + "," +
             std::to_string(e->partition) + "," +
             std::to_string(e->attrs[0]) + "\n";
    }
  }

  EventTypeRegistry registry;
  for (const char* name : {"A", "B", "C"}) registry.Register(name, {"v"});
  CsvLoadResult loaded = LoadCsvStreamFromString(csv, &registry);
  ASSERT_TRUE(loaded.ok) << loaded.error;

  KeyedWorkload pattern_holder = MakeKeyedWorkload(4, 0.1, 29);
  CollectingSink ref_sink;
  PartitionedRuntime reference(pattern_holder.pattern, loaded.stream,
                               registry.size(), "GREEDY", &ref_sink);
  reference.ProcessStream(loaded.stream);
  reference.Finish();
  ASSERT_GT(ref_sink.matches.size(), 0u);

  for (size_t threads : {1u, 2u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RuntimeOptions options;
    options.algorithm = "GREEDY";
    options.num_threads = threads;
    CollectingSink sink;
    KeyedCepRuntime runtime(pattern_holder.pattern, loaded.stream,
                            registry.size(), options, &sink);
    const EventTypeRegistry* frozen = &registry;
    IngestResult ingested = runtime.ProcessSourceAsync(
        std::make_unique<StringCsvSource>(csv, frozen));
    ASSERT_TRUE(ingested.ok) << ingested.error;
    runtime.Finish();
    EXPECT_EQ(sink.Fingerprints(), ref_sink.Fingerprints());
    EXPECT_EQ(runtime.TotalCounters().events_processed,
              loaded.stream.size());
  }
}

TEST(AsyncIngestEquivalenceTest, SyntheticSourceMatchesMaterializedRun) {
  // The synthetic generator source through the async pipeline equals
  // materializing the same generator and replaying synchronously.
  KeyedWorkload workload = MakeKeyedWorkload(6, 3.0, 43);
  CollectingSink ref_sink;
  PartitionedRuntime reference(workload.pattern, workload.stream,
                               workload.registry.size(), "GREEDY", &ref_sink);
  reference.ProcessStream(workload.stream);
  reference.Finish();

  RuntimeOptions options;
  options.algorithm = "GREEDY";
  options.num_threads = 3;
  CollectingSink sink;
  KeyedCepRuntime runtime(workload.pattern, workload.stream,
                          workload.registry.size(), options, &sink);
  IngestResult ingested = runtime.ProcessSourceAsync(
      std::make_unique<KeyedEventSource>(6, 3.0, 43));
  ASSERT_TRUE(ingested.ok) << ingested.error;
  EXPECT_EQ(ingested.events, workload.stream.size());
  runtime.Finish();
  EXPECT_EQ(sink.Fingerprints(), ref_sink.Fingerprints());
}

TEST(AsyncIngestEquivalenceTest, ErrorLeavesRuntimeFinishable) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 1.0, 7);
  RuntimeOptions options;
  options.algorithm = "GREEDY";
  options.num_threads = 2;
  CollectingSink sink;
  KeyedCepRuntime runtime(workload.pattern, workload.stream,
                          workload.registry.size(), options, &sink);
  EventTypeRegistry registry;
  registry.Register("A", {"v"});
  IngestResult result = runtime.ProcessSourceAsync(
      std::make_unique<StringCsvSource>(
          "type,ts,partition,v\nA,1,0,1\nA,nan,0,2\n", &registry));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.events, 1u);
  runtime.Finish();  // must not hang or crash after a failed ingest
  EXPECT_EQ(runtime.TotalCounters().events_processed, 1u);
}

// VectorSource that declares ± delta output (the merge then keeps a
// ledger and resolves its retractions at serial-assignment time).
class DeltaVectorSource : public VectorSource {
 public:
  using VectorSource::VectorSource;
  bool declares_retractions() const override { return true; }
};

Event Retract(TypeId type, double ts, uint32_t partition, double target_ts) {
  Event r;
  r.type = type;
  r.ts = ts;
  r.partition = partition;
  r.polarity = -1;
  r.target_ts = target_ts;
  return r;
}

TEST(IngestPipelineTest, RetractionMergesAfterInsertAtEqualTimestamp) {
  // The specified tie-break: at equal timestamps inserts merge before
  // retractions. The retracting source has the LOWER index here, so a
  // plain (ts, source index) rule would emit the retraction first —
  // only the polarity tie-break produces this order.
  for (size_t threads : {1u, 2u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<std::unique_ptr<StreamSource>> copy;
    copy.push_back(std::make_unique<DeltaVectorSource>(std::vector<Event>{
        Ev(1, 0.5, 1, 1), Retract(1, 2.0, 1, 0.5)}));
    copy.push_back(std::make_unique<VectorSource>(std::vector<Event>{
        Ev(0, 1.0, 0, 2), Ev(0, 2.0, 0, 3)}));
    IngestOptions options;
    options.num_ingest_threads = threads;
    IngestPipeline pipeline(std::move(copy), options);
    std::vector<EventPtr> got;
    IngestResult result = pipeline.Run([&](const EventPtr* run, size_t n) {
      for (size_t i = 0; i < n; ++i) got.push_back(run[i]);
    });
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(got.size(), 4u);
    // B@0.5, A@1.0, A@2.0 (insert wins the ts-2.0 tie), retract-B@2.0.
    EXPECT_EQ(got[0]->type, 1);
    EXPECT_EQ(got[1]->type, 0);
    EXPECT_EQ(got[2]->type, 0);
    EXPECT_FALSE(got[2]->IsRetraction());
    EXPECT_TRUE(got[3]->IsRetraction());
    // Serials follow merged order; the retraction resolved to the B
    // insert's serial and holds no partition sequence slot.
    EXPECT_EQ(got[3]->serial, 3u);
    EXPECT_EQ(got[3]->target_serial, got[0]->serial);
    EXPECT_EQ(got[3]->partition_seq, 0u);
    EXPECT_EQ(got[2]->partition_seq, 1u);
  }
}

TEST(IngestPipelineTest, RetractionFromNonDeclaringSourceIsAnError) {
  // A polarity=-1 event from a source that never declared retractions
  // is a contract violation the merge reports, not a crash.
  std::vector<std::unique_ptr<StreamSource>> sources;
  sources.push_back(std::make_unique<VectorSource>(std::vector<Event>{
      Ev(0, 1.0, 0, 1), Retract(0, 2.0, 0, 1.0)}));
  IngestPipeline pipeline(std::move(sources));
  std::vector<EventPtr> got;
  IngestResult result = pipeline.Run([&](const EventPtr* run, size_t n) {
    for (size_t i = 0; i < n; ++i) got.push_back(run[i]);
  });
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("declare retractions"), std::string::npos);
  // The valid prefix was delivered before the failure.
  EXPECT_EQ(got.size(), 1u);
}

TEST(IngestPipelineTest, UnresolvableRetractionIsAnError) {
  std::vector<std::unique_ptr<StreamSource>> sources;
  sources.push_back(std::make_unique<DeltaVectorSource>(std::vector<Event>{
      Ev(0, 1.0, 0, 1), Retract(0, 2.0, 0, 1.5)}));  // 1.5 never inserted
  IngestPipeline pipeline(std::move(sources));
  std::vector<EventPtr> got;
  IngestResult result = pipeline.Run([&](const EventPtr* run, size_t n) {
    for (size_t i = 0; i < n; ++i) got.push_back(run[i]);
  });
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no live insertion"), std::string::npos);
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace cepjoin
