// Bounded blocking queue: FIFO order, back-pressure when full, close
// semantics (drain then end-of-stream), multi-producer safety.

#include "parallel/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace cepjoin {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 3);
}

TEST(BoundedQueueTest, CloseDrainsThenEndsStream) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(7));
  ASSERT_TRUE(queue.Push(8));
  queue.Close();
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(out));
  EXPECT_FALSE(queue.Pop(out));  // stays closed
}

TEST(BoundedQueueTest, PushAfterCloseIsRejected) {
  BoundedQueue<int> queue(4);
  queue.Close();
  EXPECT_FALSE(queue.Push(1));
  int out = 0;
  EXPECT_FALSE(queue.Pop(out));
}

TEST(BoundedQueueTest, BackPressureBlocksProducerUntilConsumed) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    second_pushed = queue.Push(2);  // blocks: queue is full
  });
  // The producer cannot complete until the consumer makes room.
  int out = 0;
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(out));  // waits for the producer if needed
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(second_pushed);
}

TEST(BoundedQueueTest, CloseUnblocksWaitingProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = queue.Push(2); });
  // Give the producer a chance to block on the full queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_FALSE(push_result);
}

TEST(BoundedQueueTest, MultipleProducersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::multiset<int> received;
  std::thread consumer([&] {
    int out = 0;
    while (queue.Pop(out)) received.insert(out);
  });
  for (auto& t : producers) t.join();
  queue.Close();
  consumer.join();
  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  // Every value delivered exactly once.
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(received.count(v), 1u) << "value " << v;
  }
}

}  // namespace
}  // namespace cepjoin
