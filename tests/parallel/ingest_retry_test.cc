// Bounded retry of transient source failures: a source failing with
// StatusCode::kUnavailable is re-polled with exponential backoff up to
// IngestOptions::source_retry_limit times before the pipeline gives up,
// while fatal (parse) errors keep failing fast. The retried run must be
// indistinguishable from a run against a healthy source, and every
// retry is counted by cep_ingest_source_retries_total.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "api/cep_service.h"
#include "event/stream_source.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "parallel/ingest_pipeline.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

/// Wraps a source with injected transient failures: every `fail_every`th
/// Next() call fails `burst` consecutive times with kUnavailable before
/// the wrapped event is delivered. With `fatal` set, failures are
/// permanent parse errors instead.
class FlakySource : public StreamSource {
 public:
  FlakySource(std::unique_ptr<StreamSource> inner, int fail_every, int burst,
              bool fatal = false)
      : inner_(std::move(inner)), fail_every_(fail_every), burst_(burst),
        fatal_(fatal) {}

  bool Next(Event* out) override {
    ++calls_;
    if (calls_ % fail_every_ == 0 && pending_failures_ == 0) {
      pending_failures_ = burst_;
    }
    if (pending_failures_ > 0) {
      if (!fatal_) --pending_failures_;  // transient: heals after burst
      failed_ = true;
      return false;
    }
    failed_ = false;
    return inner_->Next(out);
  }

  bool ok() const override { return !failed_ && inner_->ok(); }
  std::string error() const override {
    return failed_ ? (fatal_ ? "malformed row" : "connection reset")
                   : inner_->error();
  }
  StatusCode error_code() const override {
    return fatal_ ? StatusCode::kInvalidArgument : StatusCode::kUnavailable;
  }
  bool declares_retractions() const override {
    return inner_->declares_retractions();
  }

 private:
  std::unique_ptr<StreamSource> inner_;
  int fail_every_;
  int burst_;
  bool fatal_;
  int calls_ = 0;
  int pending_failures_ = 0;
  bool failed_ = false;
};

struct PipelineRun {
  uint64_t events = 0;
  bool ok = false;
  std::string error;
  uint64_t retries = 0;
};

PipelineRun RunPipeline(const EventStream& stream, int fail_every, int burst,
                        size_t retry_limit, bool fatal = false) {
  MetricsRegistry registry;
  IngestOptions options;
  options.source_retry_limit = retry_limit;
  options.source_retry_backoff = std::chrono::milliseconds(1);
  options.metrics = &registry;
  std::vector<std::unique_ptr<StreamSource>> sources;
  sources.push_back(std::make_unique<FlakySource>(
      std::make_unique<EventStreamSource>(&stream), fail_every, burst, fatal));
  IngestPipeline pipeline(std::move(sources), options);
  PipelineRun run;
  IngestResult result = pipeline.Run([&](const EventPtr*, size_t n) {
    run.events += n;
  });
  run.ok = result.ok;
  run.error = result.error;
  run.retries =
      registry.GetCounter(metric_names::kIngestSourceRetries)->Value();
  return run;
}

TEST(IngestRetryTest, TransientFailuresAreRetriedToCompletion) {
  KeyedWorkload workload = MakeKeyedWorkload(3, 0.5, 21);
  PipelineRun run = RunPipeline(workload.stream, /*fail_every=*/25,
                                /*burst=*/3, /*retry_limit=*/5);
  EXPECT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.events, workload.stream.size());
  EXPECT_GT(run.retries, 0u);
}

TEST(IngestRetryTest, ZeroLimitFailsFast) {
  KeyedWorkload workload = MakeKeyedWorkload(3, 0.5, 21);
  PipelineRun run = RunPipeline(workload.stream, 25, 3, /*retry_limit=*/0);
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(run.error, "connection reset");
  EXPECT_EQ(run.retries, 0u);
  EXPECT_LT(run.events, workload.stream.size());
}

TEST(IngestRetryTest, BurstLongerThanLimitFails) {
  KeyedWorkload workload = MakeKeyedWorkload(3, 0.5, 21);
  PipelineRun run = RunPipeline(workload.stream, 25, /*burst=*/6,
                                /*retry_limit=*/2);
  EXPECT_FALSE(run.ok);
  EXPECT_GT(run.retries, 0u);  // it tried before giving up
}

TEST(IngestRetryTest, FatalErrorsAreNeverRetried) {
  KeyedWorkload workload = MakeKeyedWorkload(3, 0.5, 21);
  PipelineRun run = RunPipeline(workload.stream, 25, 1, /*retry_limit=*/10,
                                /*fatal=*/true);
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(run.error, "malformed row");
  EXPECT_EQ(run.retries, 0u);
}

TEST(IngestRetryTest, PumpAttachedSourcesRetriesTransientFailures) {
  KeyedWorkload workload = MakeKeyedWorkload(3, 0.5, 21);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.source_retry_limit = 5;
  options.source_retry_backoff = std::chrono::milliseconds(1);
  auto service = CepService::Create(options).value();
  CollectingSink sink;
  ASSERT_TRUE(service
                  ->Register(QuerySpec::Simple(workload.pattern)
                                 .Keyed()
                                 .WithSink(&sink))
                  .ok());
  ASSERT_TRUE(service
                  ->AttachSource(std::make_unique<FlakySource>(
                      std::make_unique<EventStreamSource>(&workload.stream),
                      /*fail_every=*/30, /*burst=*/2))
                  .ok());
  auto fed = service->PumpAttachedSources();
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_EQ(fed.value(), workload.stream.size());
  service->Finish();
  EXPECT_GT(service->metrics_registry()
                ->GetCounter(metric_names::kIngestSourceRetries)
                ->Value(),
            0u);
}

TEST(IngestRetryTest, PumpSurfacesUnavailableAfterExhaustedRetries) {
  KeyedWorkload workload = MakeKeyedWorkload(3, 0.5, 21);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.source_retry_limit = 1;
  options.source_retry_backoff = std::chrono::milliseconds(1);
  auto service = CepService::Create(options).value();
  CollectingSink sink;
  ASSERT_TRUE(service
                  ->Register(QuerySpec::Simple(workload.pattern)
                                 .Keyed()
                                 .WithSink(&sink))
                  .ok());
  ASSERT_TRUE(service
                  ->AttachSource(std::make_unique<FlakySource>(
                      std::make_unique<EventStreamSource>(&workload.stream),
                      /*fail_every=*/10, /*burst=*/4))
                  .ok());
  auto fed = service->PumpAttachedSources();
  ASSERT_FALSE(fed.ok());
  EXPECT_EQ(fed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(fed.status().message().find("connection reset"),
            std::string::npos);
}

}  // namespace
}  // namespace cepjoin
