// Sharded / single-threaded equivalence: the same keyed stream through
// PartitionedRuntime and ShardedRuntime at 1, 2, and 4 threads must
// yield identical match sets, identical per-partition plans, and
// identical summed counters — parallelism must be invisible in the
// output.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adaptive/partitioned_runtime.h"
#include "api/keyed_runtime.h"
#include "parallel/sharded_runtime.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

struct Reference {
  std::vector<std::string> sorted_fingerprints;
  std::vector<std::string> emission_order;  // fingerprints, arrival order
  EngineCounters counters;
  size_t num_partitions = 0;
};

Reference RunPartitioned(const KeyedWorkload& workload,
                         const std::string& algorithm) {
  CollectingSink sink;
  PartitionedRuntime runtime(workload.pattern, workload.stream,
                             workload.registry.size(), algorithm, &sink);
  runtime.ProcessStream(workload.stream);
  runtime.Finish();
  Reference ref;
  ref.sorted_fingerprints = sink.Fingerprints();
  for (const Match& m : sink.matches) {
    ref.emission_order.push_back(m.Fingerprint());
  }
  ref.counters = runtime.TotalCounters();
  ref.num_partitions = runtime.num_partitions();
  return ref;
}

TEST(ShardedEquivalenceTest, MatchSetsAndCountersIdenticalAcrossThreads) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 11);
  Reference ref = RunPartitioned(workload, "GREEDY");
  ASSERT_GT(ref.sorted_fingerprints.size(), 0u);
  ASSERT_EQ(ref.num_partitions, 8u);

  std::vector<std::string> previous_drain;
  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CollectingSink sink;
    ShardedOptions options;
    options.num_threads = threads;
    options.batch_size = 64;  // force multiple batches per shard
    ShardedRuntime runtime(workload.pattern, workload.stream,
                           workload.registry.size(), "GREEDY",
                           &sink, options);
    EXPECT_EQ(runtime.num_threads(), threads);
    runtime.ProcessStream(workload.stream);
    runtime.Finish();

    // Identical sorted match sets.
    EXPECT_EQ(sink.Fingerprints(), ref.sorted_fingerprints);
    // Identical summed counters.
    EngineCounters total = runtime.TotalCounters();
    EXPECT_EQ(total.events_processed, ref.counters.events_processed);
    EXPECT_EQ(total.events_processed, workload.stream.size());
    EXPECT_EQ(total.matches_emitted, ref.counters.matches_emitted);
    EXPECT_EQ(total.matches_emitted, sink.matches.size());
    EXPECT_EQ(total.instances_created, ref.counters.instances_created);
    EXPECT_EQ(runtime.num_partitions(), ref.num_partitions);

    // The drained sequence is canonical: byte-identical at every thread
    // count.
    std::vector<std::string> drain;
    for (const Match& m : sink.matches) drain.push_back(m.Fingerprint());
    if (!previous_drain.empty()) {
      EXPECT_EQ(drain, previous_drain);
    }
    previous_drain = std::move(drain);
  }
}

TEST(ShardedEquivalenceTest, BatchSizeSweepIsInvisibleInOutput) {
  // Batched evaluation is an amortization, never a semantic: every
  // (batch size, thread count) combination drains the same canonical
  // match sequence and sums to the same counters as the single-threaded
  // per-event reference.
  KeyedWorkload workload = MakeKeyedWorkload(8, 5.0, 19);
  Reference ref = RunPartitioned(workload, "GREEDY");
  ASSERT_GT(ref.sorted_fingerprints.size(), 0u);

  for (size_t batch_size : {1u, 7u, 256u}) {
    for (size_t threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("batch_size=" + std::to_string(batch_size) +
                   " threads=" + std::to_string(threads));
      CollectingSink sink;
      ShardedOptions options;
      options.num_threads = threads;
      options.batch_size = batch_size;
      ShardedRuntime runtime(workload.pattern, workload.stream,
                             workload.registry.size(), "GREEDY", &sink,
                             options);
      runtime.ProcessStream(workload.stream);
      runtime.Finish();
      std::vector<std::string> drain;
      for (const Match& m : sink.matches) drain.push_back(m.Fingerprint());
      EXPECT_EQ(drain, ref.emission_order);
      EngineCounters total = runtime.TotalCounters();
      EXPECT_EQ(total.events_processed, ref.counters.events_processed);
      EXPECT_EQ(total.matches_emitted, ref.counters.matches_emitted);
      EXPECT_EQ(total.instances_created, ref.counters.instances_created);
      EXPECT_EQ(total.predicate_evals, ref.counters.predicate_evals);
    }
  }
}

TEST(ShardedEquivalenceTest, RuntimeOptionsBatchSizePlumbsToShards) {
  // The facade forwards RuntimeOptions::batch_size to the router; a
  // deliberately tiny batch size must not change the output.
  KeyedWorkload workload = MakeKeyedWorkload(6, 4.0, 29);
  Reference ref = RunPartitioned(workload, "GREEDY");

  RuntimeOptions options;
  options.algorithm = "GREEDY";
  options.num_threads = 3;
  options.batch_size = 2;
  CollectingSink sink;
  KeyedCepRuntime runtime(workload.pattern, workload.stream,
                          workload.registry.size(), options, &sink);
  runtime.ProcessStream(workload.stream);
  runtime.Finish();
  EXPECT_EQ(sink.Fingerprints(), ref.sorted_fingerprints);
  EXPECT_EQ(runtime.TotalCounters().predicate_evals,
            ref.counters.predicate_evals);
}

TEST(ShardedEquivalenceTest, DrainOrderMatchesSingleThreadedEmissionOrder) {
  // OnEvent-time matches are emitted in global arrival order by the
  // single-threaded runtime; the canonical drain reproduces exactly that
  // order (Finish-time ties aside, which this window-bounded pattern
  // only produces in the final window).
  KeyedWorkload workload = MakeKeyedWorkload(6, 4.0, 23);
  Reference ref = RunPartitioned(workload, "GREEDY");
  ASSERT_GT(ref.emission_order.size(), 0u);

  CollectingSink sink;
  ShardedOptions options;
  options.num_threads = 3;
  options.batch_size = 32;
  ShardedRuntime runtime(workload.pattern, workload.stream,
                           workload.registry.size(), "GREEDY",
                         &sink, options);
  runtime.ProcessStream(workload.stream);
  runtime.Finish();
  std::vector<std::string> drain;
  for (const Match& m : sink.matches) drain.push_back(m.Fingerprint());
  // Sorted sets always agree; compare sequences on the emit_serial-sorted
  // reference (single-threaded emission is already emit_serial-ordered).
  EXPECT_EQ(drain, ref.emission_order);
}

TEST(ShardedEquivalenceTest, PlansIdenticalToPartitionedRuntime) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 31);

  CollectingSink single_sink;
  PartitionedRuntime single(workload.pattern, workload.stream,
                            workload.registry.size(), "GREEDY",
                            &single_sink);
  single.ProcessStream(workload.stream);
  single.Finish();

  CollectingSink sharded_sink;
  ShardedOptions options;
  options.num_threads = 4;
  ShardedRuntime sharded(workload.pattern, workload.stream,
                         workload.registry.size(), "GREEDY", &sharded_sink,
                         options);
  sharded.ProcessStream(workload.stream);
  sharded.Finish();

  ASSERT_EQ(single.num_partitions(), 8u);
  ASSERT_EQ(sharded.num_partitions(), 8u);
  for (uint32_t partition = 0; partition < 8; ++partition) {
    EXPECT_EQ(sharded.PlanFor(partition).Describe(),
              single.PlanFor(partition).Describe())
        << "partition " << partition;
  }
}

TEST(ShardedEquivalenceTest, KeyedFacadeDispatchesOnNumThreads) {
  KeyedWorkload workload = MakeKeyedWorkload(4, 3.0, 41);

  RuntimeOptions single_options;
  single_options.algorithm = "GREEDY";
  single_options.num_threads = 1;
  CollectingSink single_sink;
  KeyedCepRuntime single(workload.pattern, workload.stream,
                         workload.registry.size(), single_options,
                         &single_sink);
  EXPECT_FALSE(single.sharded());
  single.ProcessStream(workload.stream);
  single.Finish();

  RuntimeOptions sharded_options;
  sharded_options.algorithm = "GREEDY";
  sharded_options.num_threads = 2;
  CollectingSink sharded_sink;
  KeyedCepRuntime sharded(workload.pattern, workload.stream,
                          workload.registry.size(), sharded_options,
                          &sharded_sink);
  EXPECT_TRUE(sharded.sharded());
  EXPECT_EQ(sharded.num_threads(), 2u);
  sharded.ProcessStream(workload.stream);
  sharded.Finish();

  EXPECT_EQ(sharded_sink.Fingerprints(), single_sink.Fingerprints());
  EXPECT_EQ(sharded.TotalCounters().events_processed,
            single.TotalCounters().events_processed);
}

TEST(ShardedEquivalenceTest, StreamingOnEventPathEquivalent) {
  // Event-at-a-time ingestion (partial trailing batch) drains the same
  // match set as whole-stream processing.
  KeyedWorkload workload = MakeKeyedWorkload(5, 3.0, 53);
  Reference ref = RunPartitioned(workload, "GREEDY");

  CollectingSink sink;
  ShardedOptions options;
  options.num_threads = 2;
  options.batch_size = 7;  // deliberately odd: exercises partial flushes
  ShardedRuntime runtime(workload.pattern, workload.stream,
                           workload.registry.size(), "GREEDY",
                         &sink, options);
  for (const EventPtr& e : workload.stream.events()) runtime.OnEvent(e);
  runtime.Finish();
  EXPECT_EQ(sink.Fingerprints(), ref.sorted_fingerprints);
}

}  // namespace
}  // namespace cepjoin
