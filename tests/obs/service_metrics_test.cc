// Service-level observability: MetricsSnapshot() must report the same
// per-query totals at every worker thread count and every ingest thread
// count (the instruments are striped and shared, but the sums are
// deterministic), histogram counts must agree with the sinks' match
// counts, memory gauges must track engine footprints exactly, and the
// dominant-last-position gauge must match the pattern semantics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/cep_service.h"
#include "event/stream_source.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

MetricLabels QueryLabels(uint64_t id) {
  return {{"query", std::to_string(id)}};
}

MetricLabels QueryLabels(uint64_t id, const std::string& extra_key,
                         const std::string& extra_value) {
  MetricLabels labels = QueryLabels(id);
  labels.emplace_back(extra_key, extra_value);
  return labels;
}

struct Totals {
  double ingest_events = 0.0;
  double query_events = 0.0;
  double matches = 0.0;
  uint64_t detection_count = 0;
  uint64_t ingest_to_match_count = 0;
  double last_position = -1.0;
};

Totals ReadTotals(const MetricsSnapshot& snap, uint64_t query_id) {
  Totals t;
  t.ingest_events = snap.Value(metric_names::kIngestEvents);
  t.query_events = snap.Value(metric_names::kQueryEvents,
                              QueryLabels(query_id));
  t.matches = snap.Value(metric_names::kQueryMatches, QueryLabels(query_id));
  t.last_position = snap.Value(metric_names::kLastPosition,
                               QueryLabels(query_id), -1.0);
  const MetricPoint* detection =
      snap.Find(metric_names::kDetectionSeconds, QueryLabels(query_id));
  if (detection != nullptr) t.detection_count = detection->histogram.count;
  const MetricPoint* ingest_to_match =
      snap.Find(metric_names::kIngestToMatchSeconds, QueryLabels(query_id));
  if (ingest_to_match != nullptr) {
    t.ingest_to_match_count = ingest_to_match->histogram.count;
  }
  return t;
}

/// Sum of every cep_query_memory_bytes sample of one query.
double TotalMemoryBytes(const MetricsSnapshot& snap, uint64_t query_id) {
  double total = 0.0;
  const std::string query_value = std::to_string(query_id);
  for (const MetricPoint& p : snap.points) {
    if (p.name != metric_names::kQueryMemoryBytes) continue;
    for (const auto& [key, value] : p.labels) {
      if (key == "query" && value == query_value) total += p.value;
    }
  }
  return total;
}

TEST(ServiceMetricsTest, TotalsAreIdenticalAtEveryWorkerThreadCount) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 11);

  Totals reference;
  uint64_t reference_matches = 0;
  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions options;
    options.history = &workload.stream;
    options.num_types = workload.registry.size();
    options.num_threads = threads;
    options.batch_size = 64;  // force multiple batches per shard
    auto service = CepService::Create(options).value();

    CollectingSink sink;
    auto handle = service->Register(
        QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    service->ProcessStream(workload.stream);
    service->Finish();

    MetricsSnapshot snap = service->MetricsSnapshot();
    Totals totals = ReadTotals(snap, handle->id());
    EXPECT_EQ(totals.ingest_events,
              static_cast<double>(workload.stream.size()));
    // Every event routes to exactly one partition of the keyed query, so
    // the per-query event counter sums to the full stream length on both
    // the inline (threads=1) and the sharded path.
    EXPECT_EQ(totals.query_events,
              static_cast<double>(workload.stream.size()));
    EXPECT_EQ(totals.matches, static_cast<double>(sink.matches.size()));
    EXPECT_GT(sink.matches.size(), 0u);
    // Detection latency is recorded for every match; ingest-to-match
    // only for matches with an ingest anchor (Finish-time flushes have
    // none).
    EXPECT_EQ(totals.detection_count, sink.matches.size());
    EXPECT_LE(totals.ingest_to_match_count, sink.matches.size());
    // SEQ(A, B, C): the temporally last event of every match is C, so
    // the dominant last position is 2 regardless of threading.
    EXPECT_EQ(totals.last_position, 2.0);
    // All engines are finished and released: exact memory gauges report
    // zero resident bytes.
    EXPECT_EQ(TotalMemoryBytes(snap, handle->id()), 0.0);

    if (threads == 1) {
      reference = totals;
      reference_matches = sink.matches.size();
    } else {
      EXPECT_EQ(totals.ingest_events, reference.ingest_events);
      EXPECT_EQ(totals.query_events, reference.query_events);
      EXPECT_EQ(totals.matches, reference.matches);
      EXPECT_EQ(totals.detection_count, reference.detection_count);
      EXPECT_EQ(totals.last_position, reference.last_position);
      EXPECT_EQ(sink.matches.size(), reference_matches);
    }
  }
}

TEST(ServiceMetricsTest, TotalsAreIdenticalAtEveryIngestThreadCount) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 5.0, 31);
  const double last_ts = workload.stream.events().back()->ts;

  Totals reference;
  for (size_t sources : {1u, 2u, 4u}) {
    SCOPED_TRACE("sources=" + std::to_string(sources));
    ServiceOptions options;
    options.history = &workload.stream;
    options.num_types = workload.registry.size();
    options.num_threads = 2;
    options.num_ingest_threads = sources;
    auto service = CepService::Create(options).value();

    CollectingSink sink;
    auto handle = service->Register(
        QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
    ASSERT_TRUE(handle.ok());

    // Fan the materialized stream out as `sources` interleaved slices:
    // the merge stage must reassemble the original timestamp order.
    std::vector<std::unique_ptr<StreamSource>> slices;
    for (size_t i = 0; i < sources; ++i) {
      slices.push_back(
          std::make_unique<EventStreamSource>(&workload.stream, i, sources));
    }
    IngestResult result = service->ProcessSourceAsync(std::move(slices));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.events, workload.stream.size());
    service->Finish();

    MetricsSnapshot snap = service->MetricsSnapshot();
    Totals totals = ReadTotals(snap, handle->id());
    // The async pipeline owns the ingest counters for merged runs.
    EXPECT_EQ(totals.ingest_events,
              static_cast<double>(workload.stream.size()));
    EXPECT_EQ(totals.query_events,
              static_cast<double>(workload.stream.size()));
    EXPECT_EQ(totals.matches, static_cast<double>(sink.matches.size()));
    EXPECT_GT(sink.matches.size(), 0u);

    // Watermarks: one gauge per source, each at its slice's last
    // timestamp; the merged watermark reached the stream's end; lags are
    // trailing distances, never negative.
    EXPECT_EQ(snap.Value(metric_names::kMergedWatermark), last_ts);
    for (size_t i = 0; i < sources; ++i) {
      MetricLabels source_labels = {{"source", std::to_string(i)}};
      const MetricPoint* wm =
          snap.Find(metric_names::kSourceWatermark, source_labels);
      ASSERT_NE(wm, nullptr) << "source " << i;
      EXPECT_GT(wm->value, 0.0);
      EXPECT_LE(wm->value, last_ts);
      double lag = snap.Value(metric_names::kSourceWatermarkLag,
                              source_labels, -1.0);
      EXPECT_GE(lag, 0.0) << "source " << i;
    }

    if (sources == 1) {
      reference = totals;
    } else {
      EXPECT_EQ(totals.ingest_events, reference.ingest_events);
      EXPECT_EQ(totals.query_events, reference.query_events);
      EXPECT_EQ(totals.matches, reference.matches);
      EXPECT_EQ(totals.detection_count, reference.detection_count);
    }
  }
}

TEST(ServiceMetricsTest, UnkeyedMemoryGaugeTracksEngineBytesExactly) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 1.5, 19);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  auto service = CepService::Create(options).value();

  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).WithSink(&sink));
  ASSERT_TRUE(handle.ok());

  // Mid-stream: the snapshot refreshes the gauge from the live engine,
  // so it must equal the engine's exact byte accounting, not an
  // estimate.
  const size_t half = workload.stream.size() / 2;
  service->OnBatch(workload.stream.events().data(), half);
  MetricsSnapshot mid = service->MetricsSnapshot();
  double mid_bytes = mid.Value(
      metric_names::kQueryMemoryBytes,
      QueryLabels(handle->id(), "partition", "all"), -1.0);
  EXPECT_EQ(mid_bytes,
            static_cast<double>(
                service->UnkeyedCounters(handle->id()).CurrentBytes()));
  EXPECT_GT(mid_bytes, 0.0);

  service->OnBatch(workload.stream.events().data() + half,
                   workload.stream.size() - half);
  service->Finish();

  // The engine is released at Finish: the gauge reports the real
  // resident footprint (zero), not the last pre-release value.
  MetricsSnapshot done = service->MetricsSnapshot();
  EXPECT_EQ(done.Value(metric_names::kQueryMemoryBytes,
                       QueryLabels(handle->id(), "partition", "all"), -1.0),
            0.0);
  EXPECT_EQ(done.Value(metric_names::kQueryMatches, QueryLabels(handle->id())),
            static_cast<double>(sink.matches.size()));
  EXPECT_GT(sink.matches.size(), 0u);
}

TEST(ServiceMetricsTest, KeyedMemoryGaugesCoverLivePartitions) {
  KeyedWorkload workload = MakeKeyedWorkload(8, 6.0, 23);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.num_threads = 1;
  auto service = CepService::Create(options).value();

  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
  ASSERT_TRUE(handle.ok());

  const size_t half = workload.stream.size() / 2;
  service->OnBatch(workload.stream.events().data(), half);
  MetricsSnapshot mid = service->MetricsSnapshot();
  // Every partition engine buffers its window mid-stream: per-partition
  // gauges exist and sum to a positive resident footprint.
  EXPECT_GT(TotalMemoryBytes(mid, handle->id()), 0.0);

  service->OnBatch(workload.stream.events().data() + half,
                   workload.stream.size() - half);
  service->Finish();
  EXPECT_EQ(TotalMemoryBytes(service->MetricsSnapshot(), handle->id()), 0.0);
}

TEST(ServiceMetricsTest, NamedQueriesCarryTheNameLabel) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 1.5, 19);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  auto service = CepService::Create(options).value();

  CollectingSink sink;
  auto handle = service->Register(QuerySpec::Simple(workload.pattern)
                                      .Keyed()
                                      .WithName("fraud-alerts")
                                      .WithSink(&sink));
  ASSERT_TRUE(handle.ok());
  service->ProcessStream(workload.stream);
  service->Finish();

  MetricsSnapshot snap = service->MetricsSnapshot();
  EXPECT_EQ(snap.Value(metric_names::kQueryMatches,
                       QueryLabels(handle->id(), "name", "fraud-alerts")),
            static_cast<double>(sink.matches.size()));
  EXPECT_GT(sink.matches.size(), 0u);
}

TEST(ServiceMetricsTest, DisabledMetricsYieldAnEmptySnapshot) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 1.5, 19);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.num_threads = 2;
  options.enable_metrics = false;
  auto service = CepService::Create(options).value();

  CollectingSink sink;
  auto handle = service->Register(
      QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sink));
  ASSERT_TRUE(handle.ok());
  service->ProcessStream(workload.stream);
  service->Finish();

  EXPECT_EQ(service->metrics_registry(), nullptr);
  EXPECT_TRUE(service->MetricsSnapshot().points.empty());
  EXPECT_GT(sink.matches.size(), 0u);  // evaluation unaffected
}

TEST(ServiceMetricsTest, SnapshotExportsCleanly) {
  KeyedWorkload workload = MakeKeyedWorkload(6, 1.5, 19);
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.num_threads = 2;
  auto service = CepService::Create(options).value();

  CountingSink sink;
  ASSERT_TRUE(service
                  ->Register(QuerySpec::Simple(workload.pattern)
                                 .Keyed()
                                 .WithSink(&sink))
                  .ok());
  service->ProcessStream(workload.stream);
  service->Finish();

  MetricsSnapshot snap = service->MetricsSnapshot();
  ASSERT_FALSE(snap.points.empty());
  std::string text = ToPrometheusText(snap);
  EXPECT_NE(text.find(metric_names::kQueryMatches), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  std::string json = ToJson(snap);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(metric_names::kShardEvents), std::string::npos);
}

}  // namespace
}  // namespace cepjoin
