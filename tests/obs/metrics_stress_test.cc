// Concurrency stress for MetricsRegistry::Get*: the registry mutex is
// the ONE lock on the metrics path, and until now it had no dedicated
// contention test. Many threads race GetCounter/GetGauge/GetHistogram on
// deliberately COLLIDING (name, labels) keys — exercising the
// find-or-create race where two threads construct the same key
// concurrently — while other threads take Snapshot()s mid-storm. The
// registry's contract under that storm:
//  - Get* is idempotent: every racer for one key gets the SAME
//    instrument pointer (checked by recording and comparing them);
//  - instrument addresses are stable: pointers recorded early keep
//    working while later registrations grow the entry deque;
//  - once writers quiesce, totals are exact (no lost updates through
//    the striped cells), and a final snapshot sees every key exactly
//    once.
// Run under TSan (the full-suite CI job) this doubles as a data-race
// check on the annotated lock protocol.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace cepjoin {
namespace {

TEST(MetricsStressTest, RacingGetOnCollidingNamesIsIdempotent) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;  // every thread touches every key
  constexpr int kIncsPerKey = 1000;

  MetricsRegistry registry;
  // instrument pointer each (thread, key) racer resolved; all racers
  // for one key must agree.
  std::vector<std::vector<Counter*>> resolved(
      kThreads, std::vector<Counter*>(kKeys, nullptr));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeys; ++k) {
        // Same name AND same labels from every thread: maximal key
        // collision on the find-or-create path.
        Counter* c = registry.GetCounter(
            "stress_counter", {{"key", std::to_string(k)}});
        resolved[t][k] = c;
        for (int i = 0; i < kIncsPerKey; ++i) c->Inc();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(resolved[t][k], resolved[0][k])
          << "racing GetCounter returned distinct instruments for key " << k;
    }
  }
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.points.size(), static_cast<size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(snap.Value("stress_counter", {{"key", std::to_string(k)}}),
              static_cast<double>(kThreads * kIncsPerKey))
        << "lost updates on key " << k;
  }
}

TEST(MetricsStressTest, MixedKindsWithConcurrentSnapshots) {
  constexpr int kWriterThreads = 6;
  constexpr int kSnapshotThreads = 2;
  constexpr int kRounds = 400;

  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recorded_total{0};

  // Writers race all three Get* kinds on colliding names and hammer the
  // returned instruments. Handles resolved in round r are reused in
  // round r+1 (address stability under concurrent registry growth).
  std::vector<std::thread> writers;
  writers.reserve(kWriterThreads);
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&] {
      uint64_t mine = 0;
      Counter* prev_counter = nullptr;
      for (int r = 0; r < kRounds; ++r) {
        std::string key = std::to_string(r % 8);
        Counter* c = registry.GetCounter("stress_mixed_total", {{"k", key}});
        Gauge* g = registry.GetGauge("stress_mixed_gauge", {{"k", key}});
        Histogram* h =
            registry.GetHistogram("stress_mixed_seconds", {{"k", key}});
        if (prev_counter != nullptr && r % 8 == 0) {
          // The handle from 8 rounds ago must still be the key's
          // instrument (deque growth must not move entries).
          ASSERT_EQ(prev_counter, c);
        }
        if (r % 8 == 0) prev_counter = c;
        c->Inc(3);
        mine += 3;
        g->Set(static_cast<double>(r));
        h->Record(1e-6 * static_cast<double>(r + 1));
      }
      recorded_total.fetch_add(mine);
    });
  }

  // Snapshot takers run through the whole storm: they must never crash,
  // and every point they see is well-formed (monotone totals are NOT
  // guaranteed mid-run; exactness is asserted after the join below).
  std::vector<std::thread> snapshotters;
  snapshotters.reserve(kSnapshotThreads);
  for (int t = 0; t < kSnapshotThreads; ++t) {
    snapshotters.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        MetricsSnapshot snap = registry.Snapshot();
        for (const MetricPoint& p : snap.points) {
          EXPECT_FALSE(p.name.empty());
          EXPECT_GE(p.value, 0.0);
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  stop = true;
  for (auto& t : snapshotters) t.join();

  // Writers quiesced: totals are exact.
  MetricsSnapshot snap = registry.Snapshot();
  double counted = 0.0;
  size_t counter_points = 0;
  for (const MetricPoint& p : snap.points) {
    if (p.name == "stress_mixed_total") {
      counted += p.value;
      ++counter_points;
    }
  }
  EXPECT_EQ(counter_points, 8u);
  EXPECT_EQ(counted, static_cast<double>(recorded_total.load()));
  // 8 keys x 3 kinds.
  EXPECT_EQ(snap.points.size(), 24u);
}

}  // namespace
}  // namespace cepjoin
