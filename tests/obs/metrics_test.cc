// Core observability primitives: striped counters/histograms summing
// correctly across threads, log2 bucket boundary behavior, quantile
// estimation, registry idempotence, and the Prometheus/JSON exports
// round-tripping through format validation.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace cepjoin {
namespace {

// ---- counters and gauges ---------------------------------------------------

TEST(CounterTest, SumsIncrementsAcrossManyThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, IncByNAddsN) {
  Counter counter;
  counter.Inc(5);
  counter.Inc();
  counter.Inc(37);
  EXPECT_EQ(counter.Value(), 43u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
}

// ---- histogram bucket boundaries -------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  HistogramOptions opts;
  opts.first_bound = 1e-6;
  opts.num_buckets = 36;
  Histogram h(opts);
  // Exact bound lands in its own bucket (inclusive upper bound).
  for (int i = 0; i < opts.num_buckets; ++i) {
    EXPECT_EQ(h.BucketIndex(h.UpperBound(i)), i) << "bound " << i;
  }
  // Just past a bound spills into the next bucket.
  EXPECT_EQ(h.BucketIndex(h.UpperBound(0) * 1.0001), 1);
  EXPECT_EQ(h.BucketIndex(h.UpperBound(5) * 1.0001), 6);
  // At or below zero, and NaN, count into the first bucket rather than
  // being dropped.
  EXPECT_EQ(h.BucketIndex(0.0), 0);
  EXPECT_EQ(h.BucketIndex(-1.0), 0);
  EXPECT_EQ(h.BucketIndex(std::numeric_limits<double>::quiet_NaN()), 0);
  // Past the last finite bound: the +Inf bucket.
  EXPECT_EQ(h.BucketIndex(h.UpperBound(opts.num_buckets - 1) * 2.0),
            opts.num_buckets);
  EXPECT_EQ(h.BucketIndex(std::numeric_limits<double>::infinity()),
            opts.num_buckets);
}

TEST(HistogramTest, CollectAggregatesCountsAndSum) {
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.num_buckets = 4;  // bounds 1, 2, 4, 8
  Histogram h(opts);
  h.Record(0.5);   // bucket 0
  h.Record(1.0);   // bucket 0 (inclusive)
  h.Record(2.0);   // bucket 1 (exact power)
  h.Record(3.0);   // bucket 2
  h.Record(100.0); // +Inf bucket
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  h.Collect(&counts, &count, &sum);
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(count, 5u);
  EXPECT_DOUBLE_EQ(sum, 106.5);
}

TEST(HistogramTest, ConcurrentRecordsSumAcrossStripes) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1e-6 * static_cast<double>(1 + (t + i) % 7));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  h.Collect(&counts, &count, &sum);
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : counts) bucket_total += c;
  EXPECT_EQ(bucket_total, count);
  EXPECT_GT(sum, 0.0);
}

TEST(HistogramDataTest, QuantilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.num_buckets = 8;
  Histogram* h = registry.GetHistogram("q", {}, opts);
  // 100 values in (1, 2]: bucket 1 spans lower bound 1 to upper bound 2.
  for (int i = 0; i < 100; ++i) h->Record(1.5);
  MetricsSnapshot snap = registry.Snapshot();
  const MetricPoint* point = snap.Find("q");
  ASSERT_NE(point, nullptr);
  const HistogramData& data = point->histogram;
  EXPECT_EQ(data.count, 100u);
  // All mass in bucket (1, 2]: quantiles interpolate across that bucket.
  EXPECT_GE(data.Quantile(0.5), 1.0);
  EXPECT_LE(data.Quantile(0.5), 2.0);
  EXPECT_GE(data.Quantile(0.99), data.Quantile(0.5));
  EXPECT_LE(data.Quantile(0.99), 2.0);
  // Empty histogram: 0 by contract.
  HistogramData empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

// ---- registry --------------------------------------------------------------

TEST(MetricsRegistryTest, GetIsIdempotentPerNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("c", {{"x", "1"}});
  Counter* b = registry.GetCounter("c", {{"x", "1"}});
  Counter* c = registry.GetCounter("c", {{"x", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Label order does not matter: canonicalized on registration.
  Gauge* g1 = registry.GetGauge("g", {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = registry.GetGauge("g", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndFindable) {
  MetricsRegistry registry;
  registry.GetCounter("z_last")->Inc(3);
  registry.GetGauge("a_first")->Set(1.5);
  registry.GetCounter("m_mid", {{"k", "v"}})->Inc();
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.points.size(), 3u);
  EXPECT_EQ(snap.points[0].name, "a_first");
  EXPECT_EQ(snap.points[1].name, "m_mid");
  EXPECT_EQ(snap.points[2].name, "z_last");
  EXPECT_EQ(snap.Value("z_last"), 3.0);
  EXPECT_EQ(snap.Value("m_mid", {{"k", "v"}}), 1.0);
  EXPECT_EQ(snap.Value("absent", {}, -7.0), -7.0);
}

// ---- Prometheus text exposition format -------------------------------------

/// Splits exposition text into lines (no trailing empty line).
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Validates one sample line: `name{labels} value` or `name value`, with
/// a parseable numeric value. Returns the metric name.
std::string ValidateSampleLine(const std::string& line) {
  size_t name_end = line.find_first_of("{ ");
  EXPECT_NE(name_end, std::string::npos) << line;
  std::string name = line.substr(0, name_end);
  EXPECT_FALSE(name.empty()) << line;
  for (char ch : line.substr(0, name_end)) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
                ch == ':')
        << line;
  }
  size_t value_start;
  if (line[name_end] == '{') {
    size_t close = line.find('}', name_end);
    EXPECT_NE(close, std::string::npos) << line;
    EXPECT_EQ(line[close + 1], ' ') << line;
    value_start = close + 2;
  } else {
    value_start = name_end + 1;
  }
  std::string value = line.substr(value_start);
  EXPECT_FALSE(value.empty()) << line;
  if (value != "+Inf") {
    size_t parsed = 0;
    (void)std::stod(value, &parsed);
    EXPECT_EQ(parsed, value.size()) << line;
  }
  return name;
}

TEST(PrometheusExportTest, ExposesValidFormatWithOneTypeLinePerName) {
  MetricsRegistry registry;
  registry.GetCounter("cep_test_total", {{"query", "0"}})->Inc(4);
  registry.GetCounter("cep_test_total", {{"query", "1"}})->Inc(9);
  registry.GetGauge("cep_test_gauge")->Set(0.25);
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.num_buckets = 3;
  Histogram* h = registry.GetHistogram("cep_test_seconds", {}, opts);
  h->Record(0.5);
  h->Record(3.0);
  h->Record(50.0);

  std::string text = ToPrometheusText(registry.Snapshot());
  std::map<std::string, int> type_lines;
  for (const std::string& line : Lines(text)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream in(line.substr(7));
      std::string name, kind;
      in >> name >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      ++type_lines[name];
      continue;
    }
    EXPECT_NE(line[0], '#') << "unknown comment line: " << line;
    ValidateSampleLine(line);
  }
  // Exactly one TYPE line per metric name, even with multiple label sets.
  EXPECT_EQ(type_lines["cep_test_total"], 1);
  EXPECT_EQ(type_lines["cep_test_gauge"], 1);
  EXPECT_EQ(type_lines["cep_test_seconds"], 1);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry registry;
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.num_buckets = 3;  // bounds 1, 2, 4
  Histogram* h = registry.GetHistogram("lat_seconds", {{"query", "0"}}, opts);
  h->Record(0.5);
  h->Record(1.5);
  h->Record(3.0);
  h->Record(99.0);

  std::string text = ToPrometheusText(registry.Snapshot());
  std::vector<double> bucket_values;
  bool saw_inf = false;
  double count_value = -1.0;
  double sum_value = 0.0;
  for (const std::string& line : Lines(text)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("lat_seconds_bucket{", 0) == 0) {
      EXPECT_NE(line.find("le=\""), std::string::npos) << line;
      EXPECT_FALSE(saw_inf) << "+Inf must be the last bucket: " << line;
      if (line.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
      bucket_values.push_back(std::stod(line.substr(line.rfind(' ') + 1)));
    } else if (line.rfind("lat_seconds_count", 0) == 0) {
      count_value = std::stod(line.substr(line.rfind(' ') + 1));
    } else if (line.rfind("lat_seconds_sum", 0) == 0) {
      sum_value = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(bucket_values.size(), 4u);  // 3 finite bounds + Inf
  EXPECT_TRUE(saw_inf);
  for (size_t i = 1; i < bucket_values.size(); ++i) {
    EXPECT_GE(bucket_values[i], bucket_values[i - 1]) << "not cumulative";
  }
  EXPECT_EQ(bucket_values.back(), 4.0);  // le="+Inf" == total count
  EXPECT_EQ(count_value, 4.0);
  EXPECT_DOUBLE_EQ(sum_value, 104.0);
}

TEST(PrometheusExportTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("esc_total", {{"q", "a\"b\\c\nd"}})->Inc();
  std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("q=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
}

// ---- JSON round-trip -------------------------------------------------------

/// Minimal JSON value/parser — just enough structure validation to
/// round-trip the exporter's output (objects, arrays, strings, numbers).
struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber } kind = Kind::kNumber;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(esc); break;
        }
      } else {
        out->push_back(c);
      }
    }
    return Consume('"');
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    out->kind = JsonValue::Kind::kNumber;
    size_t parsed = 0;
    out->number = std::stod(text_.substr(pos_), &parsed);
    if (parsed == 0) return false;
    pos_ += parsed;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonExportTest, RoundTripsThroughAParser) {
  MetricsRegistry registry;
  registry.GetCounter("cep_events_total", {{"query", "0"}})->Inc(42);
  registry.GetGauge("cep_mem_bytes", {{"partition", "all"}, {"query", "0"}})
      ->Set(1234.5);
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.num_buckets = 3;
  Histogram* h = registry.GetHistogram("cep_lat_seconds", {}, opts);
  h->Record(0.5);
  h->Record(3.0);

  MetricsSnapshot snap = registry.Snapshot();
  std::string json = ToJson(snap);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(root.array.size(), snap.points.size());

  for (size_t i = 0; i < snap.points.size(); ++i) {
    const MetricPoint& point = snap.points[i];
    const JsonValue& obj = root.array[i];
    ASSERT_EQ(obj.kind, JsonValue::Kind::kObject) << point.name;
    ASSERT_EQ(obj.object.count("name"), 1u);
    EXPECT_EQ(obj.object.at("name").string, point.name);
    ASSERT_EQ(obj.object.count("labels"), 1u);
    const JsonValue& labels = obj.object.at("labels");
    ASSERT_EQ(labels.kind, JsonValue::Kind::kObject);
    EXPECT_EQ(labels.object.size(), point.labels.size());
    for (const auto& [key, value] : point.labels) {
      ASSERT_EQ(labels.object.count(key), 1u) << point.name;
      EXPECT_EQ(labels.object.at(key).string, value);
    }
    if (point.kind == MetricKind::kHistogram) {
      ASSERT_EQ(obj.object.count("count"), 1u);
      ASSERT_EQ(obj.object.count("sum"), 1u);
      ASSERT_EQ(obj.object.count("le"), 1u);
      ASSERT_EQ(obj.object.count("buckets"), 1u);
      EXPECT_EQ(obj.object.at("count").number,
                static_cast<double>(point.histogram.count));
      EXPECT_DOUBLE_EQ(obj.object.at("sum").number, point.histogram.sum);
      const JsonValue& le = obj.object.at("le");
      const JsonValue& buckets = obj.object.at("buckets");
      ASSERT_EQ(le.array.size(), point.histogram.le.size());
      ASSERT_EQ(buckets.array.size(), le.array.size() + 1);
      uint64_t total = 0;
      for (size_t b = 0; b < buckets.array.size(); ++b) {
        EXPECT_EQ(buckets.array[b].number,
                  static_cast<double>(point.histogram.counts[b]));
        total += point.histogram.counts[b];
      }
      EXPECT_EQ(total, point.histogram.count);
    } else {
      ASSERT_EQ(obj.object.count("value"), 1u) << point.name;
      EXPECT_DOUBLE_EQ(obj.object.at("value").number, point.value);
    }
  }
}

}  // namespace
}  // namespace cepjoin
