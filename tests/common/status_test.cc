// Status / StatusOr: the recoverable-error vocabulary of the service
// API. Small on purpose — the contract is "OK or code+message", checked
// access aborts with the error's own message.

#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cepjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad spec");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad spec");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad spec");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("y").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nothing here"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nothing here");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(**result, 7);
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

TEST(StatusOrDeathTest, ValueOnErrorAbortsWithMessage) {
  StatusOr<int> result(Status::InvalidArgument("the reason"));
  EXPECT_DEATH(result.value(), "the reason");
}

Status FailsThrough() {
  CEPJOIN_RETURN_IF_ERROR(Status::InvalidArgument("inner failure"));
  return Status::Ok();
}

Status Succeeds() {
  CEPJOIN_RETURN_IF_ERROR(Status::Ok());
  return Status::NotFound("made it past the macro");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailsThrough().message(), "inner failure");
  // An OK status must not trigger the early return.
  EXPECT_EQ(Succeeds().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cepjoin
