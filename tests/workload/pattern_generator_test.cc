#include "workload/pattern_generator.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

StockUniverse SmallUniverse() {
  StockGeneratorConfig config;
  config.num_symbols = 12;
  config.duration_seconds = 5.0;
  return GenerateStockStream(config);
}

TEST(PatternGeneratorTest, SequenceFamily) {
  StockUniverse universe = SmallUniverse();
  PatternGenConfig config;
  config.family = PatternFamily::kSequence;
  config.size = 5;
  std::vector<SimplePattern> patterns = GeneratePattern(universe, config);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].op(), OperatorKind::kSeq);
  EXPECT_EQ(patterns[0].size(), 5);
  EXPECT_TRUE(patterns[0].is_pure());
  // ~size/2 conditions.
  EXPECT_EQ(patterns[0].conditions().size(), 2u);
}

TEST(PatternGeneratorTest, NegationFamilyHasOneInternalNegatedSlot) {
  StockUniverse universe = SmallUniverse();
  PatternGenConfig config;
  config.family = PatternFamily::kNegation;
  config.size = 5;
  std::vector<SimplePattern> patterns = GeneratePattern(universe, config);
  ASSERT_EQ(patterns.size(), 1u);
  ASSERT_EQ(patterns[0].negated_positions().size(), 1u);
  int neg = patterns[0].negated_positions()[0];
  EXPECT_GT(neg, 0);
  EXPECT_LT(neg, 4);
  EXPECT_EQ(patterns[0].num_positive(), 4);
}

TEST(PatternGeneratorTest, ConjunctionFamily) {
  StockUniverse universe = SmallUniverse();
  PatternGenConfig config;
  config.family = PatternFamily::kConjunction;
  config.size = 4;
  std::vector<SimplePattern> patterns = GeneratePattern(universe, config);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].op(), OperatorKind::kAnd);
}

TEST(PatternGeneratorTest, KleeneFamilyHasSelectiveFilter) {
  StockUniverse universe = SmallUniverse();
  PatternGenConfig config;
  config.family = PatternFamily::kKleene;
  config.size = 4;
  std::vector<SimplePattern> patterns = GeneratePattern(universe, config);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_TRUE(patterns[0].has_kleene());
  // The Kleene slot carries a unary filter keeping the power set small.
  int kleene_pos = -1;
  for (int i = 0; i < patterns[0].size(); ++i) {
    if (patterns[0].events()[i].kleene) kleene_pos = i;
  }
  ASSERT_GE(kleene_pos, 0);
  bool has_unary = false;
  for (const ConditionPtr& c : patterns[0].conditions()) {
    if (c->unary() && c->left() == kleene_pos) has_unary = true;
  }
  EXPECT_TRUE(has_unary);
}

TEST(PatternGeneratorTest, DisjunctionFamilyYieldsThreeSequences) {
  StockUniverse universe = SmallUniverse();
  PatternGenConfig config;
  config.family = PatternFamily::kDisjunction;
  config.size = 3;
  std::vector<SimplePattern> patterns = GeneratePattern(universe, config);
  ASSERT_EQ(patterns.size(), 3u);
  for (const SimplePattern& p : patterns) {
    EXPECT_EQ(p.op(), OperatorKind::kSeq);
    EXPECT_EQ(p.size(), 3);
  }
}

TEST(PatternGeneratorTest, DeterministicPerSeedDistinctAcrossSeeds) {
  StockUniverse universe = SmallUniverse();
  PatternGenConfig config;
  config.family = PatternFamily::kSequence;
  config.size = 4;
  config.seed = 9;
  std::string a = GeneratePattern(universe, config)[0].Describe();
  std::string b = GeneratePattern(universe, config)[0].Describe();
  EXPECT_EQ(a, b);
  config.seed = 10;
  std::string c = GeneratePattern(universe, config)[0].Describe();
  EXPECT_NE(a, c);
}

TEST(PatternGeneratorTest, StrategyPropagates) {
  StockUniverse universe = SmallUniverse();
  PatternGenConfig config;
  config.family = PatternFamily::kSequence;
  config.size = 3;
  config.strategy = SelectionStrategy::kSkipTillNext;
  EXPECT_EQ(GeneratePattern(universe, config)[0].strategy(),
            SelectionStrategy::kSkipTillNext);
}

TEST(PatternGeneratorTest, AllFamiliesEnumerated) {
  EXPECT_EQ(AllFamilies().size(), 5u);
  EXPECT_STREQ(FamilyName(PatternFamily::kKleene), "kleene");
}

}  // namespace
}  // namespace cepjoin
