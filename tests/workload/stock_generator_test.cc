#include "workload/stock_generator.h"

#include <gtest/gtest.h>

#include "stats/collector.h"

namespace cepjoin {
namespace {

TEST(StockGeneratorTest, ProducesOrderedStreamWithAllSymbols) {
  StockGeneratorConfig config;
  config.num_symbols = 8;
  config.duration_seconds = 30.0;
  StockUniverse universe = GenerateStockStream(config);
  EXPECT_EQ(universe.registry.size(), 8u);
  EXPECT_GT(universe.stream.size(), 100u);
  Timestamp prev = 0.0;
  for (const EventPtr& e : universe.stream.events()) {
    EXPECT_GE(e->ts, prev);
    prev = e->ts;
    EXPECT_LT(e->type, 8u);
    EXPECT_EQ(e->attrs.size(), 2u);
  }
  for (size_t t = 0; t < 8; ++t) {
    EXPECT_GT(universe.stream.type_counts()[t], 0u) << "symbol " << t;
  }
}

TEST(StockGeneratorTest, DeterministicForFixedSeed) {
  StockGeneratorConfig config;
  config.num_symbols = 4;
  config.duration_seconds = 5.0;
  StockUniverse a = GenerateStockStream(config);
  StockUniverse b = GenerateStockStream(config);
  ASSERT_EQ(a.stream.size(), b.stream.size());
  for (size_t i = 0; i < a.stream.size(); ++i) {
    EXPECT_EQ(a.stream[i]->type, b.stream[i]->type);
    EXPECT_DOUBLE_EQ(a.stream[i]->ts, b.stream[i]->ts);
    EXPECT_EQ(a.stream[i]->attrs, b.stream[i]->attrs);
  }
}

TEST(StockGeneratorTest, SeedsChangeTheStream) {
  StockGeneratorConfig config;
  config.num_symbols = 4;
  config.duration_seconds = 5.0;
  StockUniverse a = GenerateStockStream(config);
  config.seed = 43;
  StockUniverse b = GenerateStockStream(config);
  EXPECT_NE(a.stream.size(), b.stream.size());
}

TEST(StockGeneratorTest, RatesFallInConfiguredRange) {
  StockGeneratorConfig config;
  config.num_symbols = 10;
  config.min_rate = 2.0;
  config.max_rate = 20.0;
  config.duration_seconds = 60.0;
  StockUniverse universe = GenerateStockStream(config);
  StatsCollector collector(universe.stream, universe.registry.size());
  for (TypeId t : universe.symbols) {
    double rate = collector.TypeRate(t);
    // Poisson noise allowance around the configured bounds.
    EXPECT_GT(rate, config.min_rate * 0.4) << "symbol " << t;
    EXPECT_LT(rate, config.max_rate * 1.6) << "symbol " << t;
  }
}

TEST(StockGeneratorTest, DifferenceAttributeTracksPriceWalk) {
  StockGeneratorConfig config;
  config.num_symbols = 1;
  config.duration_seconds = 10.0;
  StockUniverse universe = GenerateStockStream(config);
  double prev_price = 0.0;
  bool first = true;
  for (const EventPtr& e : universe.stream.events()) {
    if (!first) {
      EXPECT_NEAR(e->Attr(universe.price_attr()) - prev_price,
                  e->Attr(universe.difference_attr()), 1e-9);
    }
    prev_price = e->Attr(universe.price_attr());
    first = false;
  }
}

TEST(StockGeneratorTest, SelectivitySpectrumIsBroad) {
  // The drift spread must produce both selective and permissive
  // difference comparisons, like the paper's measured 0.002–0.88 range.
  StockGeneratorConfig config;
  config.num_symbols = 16;
  config.duration_seconds = 60.0;
  StockUniverse universe = GenerateStockStream(config);
  StatsCollector collector(universe.stream, universe.registry.size());
  double min_sel = 1.0;
  double max_sel = 0.0;
  for (int i = 0; i < 16; ++i) {
    for (int j = i + 1; j < 16; ++j) {
      AttrCompare cond(0, universe.difference_attr(), CmpOp::kLt, 1,
                       universe.difference_attr());
      double sel = collector.ConditionSelectivity(cond, universe.symbols[i],
                                                  universe.symbols[j]);
      min_sel = std::min(min_sel, sel);
      max_sel = std::max(max_sel, sel);
    }
  }
  EXPECT_LT(min_sel, 0.15);
  EXPECT_GT(max_sel, 0.75);
}

TEST(StockGeneratorTest, PartitionsAssignedBySector) {
  StockGeneratorConfig config;
  config.num_symbols = 8;
  config.num_sectors = 4;
  config.duration_seconds = 5.0;
  StockUniverse universe = GenerateStockStream(config);
  for (const EventPtr& e : universe.stream.events()) {
    EXPECT_LT(e->partition, 4u);
    EXPECT_EQ(e->partition, e->type % 4);
  }
}

}  // namespace
}  // namespace cepjoin
