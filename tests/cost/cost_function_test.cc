#include "cost/cost_function.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

PatternStats SmallStats() {
  // rates: 2, 10, 1; unary sels: 0.5, 1, 1; sel(0,1)=0.1, sel(1,2)=0.2.
  PatternStats stats(3);
  stats.set_rate(0, 2.0);
  stats.set_rate(1, 10.0);
  stats.set_rate(2, 1.0);
  stats.set_sel(0, 0, 0.5);
  stats.set_sel(0, 1, 0.1);
  stats.set_sel(1, 2, 0.2);
  return stats;
}

TEST(CostFunctionTest, OrderCostHandComputed) {
  // W = 4. Order (0,1,2):
  // PM(1) = 4·2·0.5                       = 4
  // PM(2) = 4²·2·10·0.5·0.1               = 16
  // PM(3) = 4³·2·10·1·0.5·0.1·0.2         = 12.8
  CostFunction cost(SmallStats(), 4.0);
  OrderPlan plan({0, 1, 2});
  EXPECT_NEAR(cost.OrderThroughputCost(plan), 4 + 16 + 12.8, 1e-9);
}

TEST(CostFunctionTest, OrderCostDependsOnOrder) {
  CostFunction cost(SmallStats(), 4.0);
  // Starting with the rare selective type must be cheaper than starting
  // with the frequent one.
  double cheap = cost.OrderThroughputCost(OrderPlan({0, 1, 2}));
  double expensive = cost.OrderThroughputCost(OrderPlan({1, 0, 2}));
  EXPECT_LT(cheap, expensive);
}

TEST(CostFunctionTest, TreeCostHandComputed) {
  // W = 4, left-deep tree ((0 1) 2):
  // leaves: 8 + 40 + 4 = 52
  // node(01): 8·40·0.1 = 32  (no unary selectivities in the tree model)
  // node(012): 8·40·4·0.1·0.2 = 25.6
  CostFunction cost(SmallStats(), 4.0);
  TreePlan tree = TreePlan::LeftDeep(OrderPlan({0, 1, 2}));
  EXPECT_NEAR(cost.TreeThroughputCost(tree), 52 + 32 + 25.6, 1e-9);
}

TEST(CostFunctionTest, OrderSetCostIsOrderInvariant) {
  Rng rng(11);
  PatternStats stats = testing_util::RandomStats(6, rng);
  CostFunction cost(stats, 3.0);
  // PM of a prefix depends only on the slot set — the property DP-LD
  // exploits.
  uint64_t mask = 0b101101;
  double direct = cost.OrderSetCost(mask);
  EXPECT_GT(direct, 0.0);
  // Recompute via a different traversal (tree-node cost times unary
  // factors) and compare.
  double unary = 1.0;
  for (int i = 0; i < 6; ++i) {
    if (mask >> i & 1) unary *= stats.sel(i, i);
  }
  EXPECT_NEAR(direct, cost.TreeNodeCost(mask) * unary, direct * 1e-12);
}

TEST(CostFunctionTest, LatencyCostCountsSuccessorsOfAnchor) {
  // Cost_lat = Σ_{i after anchor} W·r_i (Sec. 6.1).
  CostSpec spec;
  spec.latency_alpha = 1.0;
  spec.latency_anchor = 2;  // slot 2 arrives last
  CostFunction cost(SmallStats(), 4.0, spec);
  // Order (2,0,1): anchor first => both successors buffered: 4·2 + 4·10.
  EXPECT_NEAR(cost.OrderLatencyCost(OrderPlan({2, 0, 1})), 48.0, 1e-9);
  // Order (0,1,2): anchor last => latency 0.
  EXPECT_NEAR(cost.OrderLatencyCost(OrderPlan({0, 1, 2})), 0.0, 1e-9);
  // Hybrid total adds alpha-weighted latency.
  EXPECT_NEAR(cost.OrderCost(OrderPlan({2, 0, 1})),
              cost.OrderThroughputCost(OrderPlan({2, 0, 1})) + 48.0, 1e-9);
}

TEST(CostFunctionTest, TreeLatencyWalksAnchorAncestors) {
  CostSpec spec;
  spec.latency_alpha = 1.0;
  spec.latency_anchor = 2;
  CostFunction cost(SmallStats(), 4.0, spec);
  TreePlan tree = TreePlan::LeftDeep(OrderPlan({0, 1, 2}));
  // Anchor leaf 2 sits directly under the root; its only ancestor-sibling
  // is the (0 1) subtree: PM = 8·40·0.1 = 32.
  EXPECT_NEAR(cost.TreeLatencyCost(tree), 32.0, 1e-9);
  // Anchor deepest: siblings are leaf 1 (40) and leaf... tree ((2 1) 0):
  TreePlan tree2 = TreePlan::LeftDeep(OrderPlan({2, 1, 0}));
  // ancestors of leaf 2: node(21) sibling leaf1 = 40; root sibling leaf0 = 8.
  EXPECT_NEAR(cost.TreeLatencyCost(tree2), 48.0, 1e-9);
}

TEST(CostFunctionTest, NextMatchModelUsesMinRate) {
  CostSpec spec;
  spec.model = ThroughputModel::kNextMatch;
  CostFunction cost(SmallStats(), 4.0, spec);
  // m[1] for {1}: W·min(10)·sel11 = 40; paper's Cost^next sums W·m[k].
  EXPECT_NEAR(cost.OrderSetCost(uint64_t{1} << 1), 4.0 * 40.0, 1e-9);
  // m[2] for {0,1}: W·min(2,10)·0.5·0.1 = 4·2·0.05 = 0.4; term = W·m = 1.6.
  EXPECT_NEAR(cost.OrderSetCost(0b011), 1.6, 1e-9);
}

TEST(CostFunctionTest, NextMatchTreeNodeUsesMinRate) {
  CostSpec spec;
  spec.model = ThroughputModel::kNextMatch;
  CostFunction cost(SmallStats(), 4.0, spec);
  // PM({0,1}) = W·min(2,10)·sel01 = 4·2·0.1 = 0.8 (no unary).
  EXPECT_NEAR(cost.TreeNodeCost(0b011), 0.8, 1e-9);
}

TEST(CostFunctionTest, NextMatchCostBoundedByAnyCost) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    PatternStats stats = testing_util::RandomStats(5, rng);
    // With W·r ≥ 1 for all slots, m[k] ≤ PM(k) once the extra W factor is
    // discounted.
    for (int i = 0; i < 5; ++i) {
      stats.set_rate(i, std::max(stats.rate(i), 1.0));
    }
    CostSpec next_spec;
    next_spec.model = ThroughputModel::kNextMatch;
    CostFunction any_cost(stats, 2.0);
    CostFunction next_cost(stats, 2.0, next_spec);
    OrderPlan plan = OrderPlan::Identity(5);
    EXPECT_LE(next_cost.OrderThroughputCost(plan) / 2.0,
              any_cost.OrderThroughputCost(plan) + 1e-9);
  }
}

TEST(CostFunctionDeathTest, RejectsBadInputs) {
  PatternStats stats(2);
  EXPECT_DEATH(CostFunction(stats, 0.0), "");
  CostSpec spec;
  spec.latency_anchor = 5;
  EXPECT_DEATH(CostFunction(stats, 1.0, spec), "");
}

}  // namespace
}  // namespace cepjoin
