// Tests of the Appendix A machinery: the algebra of C(s), T(s), the rank
// function, and the ASI property itself (Theorem 5 and Definition 1).

#include "cost/asi.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost_function.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

AsiContext RandomContext(int n, Rng& rng) {
  AsiContext ctx;
  for (int i = 0; i < n; ++i) {
    ctx.factor.push_back(rng.UniformReal(0.05, 20.0));
  }
  return ctx;
}

TEST(AsiTest, CAndTBaseCases) {
  AsiContext ctx;
  ctx.factor = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(AsiC(ctx, {}), 0.0);
  EXPECT_DOUBLE_EQ(AsiT(ctx, {}), 1.0);
  EXPECT_DOUBLE_EQ(AsiC(ctx, {0}), 2.0);
  EXPECT_DOUBLE_EQ(AsiT(ctx, {0}), 2.0);
  // C(s1 s2) = C(s1) + T(s1)·C(s2): 2 + 2·3 = 8.
  EXPECT_DOUBLE_EQ(AsiC(ctx, {0, 1}), 8.0);
  EXPECT_DOUBLE_EQ(AsiT(ctx, {0, 1}), 6.0);
}

TEST(AsiTest, ConcatenationIdentityHolds) {
  Rng rng(7);
  AsiContext ctx = RandomContext(8, rng);
  std::vector<int> s1 = {0, 3, 5};
  std::vector<int> s2 = {1, 7, 2};
  std::vector<int> s12 = s1;
  s12.insert(s12.end(), s2.begin(), s2.end());
  EXPECT_NEAR(AsiC(ctx, s12), AsiC(ctx, s1) + AsiT(ctx, s1) * AsiC(ctx, s2),
              1e-9);
  EXPECT_NEAR(AsiT(ctx, s12), AsiT(ctx, s1) * AsiT(ctx, s2), 1e-9);
}

TEST(AsiTest, RankInequalityMatchesCostInequality) {
  // Definition 1 / Theorem 5: C(auvb) <= C(avub)  <=>  rank(u) <= rank(v),
  // verified on random sequences and splits.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 9));
    AsiContext ctx = RandomContext(n, rng);
    std::vector<int> slots(n);
    std::iota(slots.begin(), slots.end(), 0);
    rng.Shuffle(slots.begin(), slots.end());
    // Split into a | u | v | b with u, v non-empty.
    int ua = static_cast<int>(rng.UniformInt(0, n - 2));
    int ub = static_cast<int>(rng.UniformInt(ua + 1, n - 1));
    int vb = static_cast<int>(rng.UniformInt(ub + 1, n));
    std::vector<int> a(slots.begin(), slots.begin() + ua);
    std::vector<int> u(slots.begin() + ua, slots.begin() + ub);
    std::vector<int> v(slots.begin() + ub, slots.begin() + vb);
    std::vector<int> b(slots.begin() + vb, slots.end());

    auto concat = [](std::initializer_list<const std::vector<int>*> parts) {
      std::vector<int> out;
      for (const auto* p : parts) out.insert(out.end(), p->begin(), p->end());
      return out;
    };
    double c_uv = AsiC(ctx, concat({&a, &u, &v, &b}));
    double c_vu = AsiC(ctx, concat({&a, &v, &u, &b}));
    double rank_u = AsiRank(ctx, u);
    double rank_v = AsiRank(ctx, v);
    if (rank_u < rank_v - 1e-12) {
      EXPECT_LE(c_uv, c_vu + 1e-9);
    } else if (rank_v < rank_u - 1e-12) {
      EXPECT_LE(c_vu, c_uv + 1e-9);
    }
  }
}

TEST(AsiTest, ContextFoldsUnaryAndParentSelectivity) {
  PatternStats stats(3);
  stats.set_rate(0, 2.0);
  stats.set_rate(1, 4.0);
  stats.set_rate(2, 8.0);
  stats.set_sel(0, 0, 0.5);
  stats.set_sel(0, 1, 0.25);
  stats.set_sel(1, 2, 0.125);
  // Chain 0 - 1 - 2 rooted at 0.
  AsiContext ctx = MakeAsiContext(stats, /*window=*/2.0, {-1, 0, 1});
  EXPECT_DOUBLE_EQ(ctx.factor[0], 2.0 * 2.0 * 0.5);        // W·r·sel00
  EXPECT_DOUBLE_EQ(ctx.factor[1], 2.0 * 4.0 * 0.25);       // W·r·selR
  EXPECT_DOUBLE_EQ(ctx.factor[2], 2.0 * 8.0 * 0.125);
}

TEST(AsiTest, ChainCostMatchesOrderCostOnAcyclicPattern) {
  // For a chain-shaped predicate graph and a precedence-respecting order,
  // Cost_ord^trpt(O) == C(O) with the per-node factors of Appendix A.
  PatternStats stats(4);
  for (int i = 0; i < 4; ++i) stats.set_rate(i, 1.0 + i);
  stats.set_sel(0, 1, 0.3);
  stats.set_sel(1, 2, 0.6);
  stats.set_sel(2, 3, 0.9);
  double window = 1.5;
  CostFunction cost(stats, window);
  AsiContext ctx = MakeAsiContext(stats, window, {-1, 0, 1, 2});
  std::vector<int> order = {0, 1, 2, 3};  // respects the chain precedence
  EXPECT_NEAR(AsiC(ctx, order), cost.OrderThroughputCost(OrderPlan(order)),
              1e-9);
}

TEST(AsiDeathTest, RankOfEmptySequenceAborts) {
  AsiContext ctx;
  ctx.factor = {1.0};
  EXPECT_DEATH(AsiRank(ctx, {}), "");
}

TEST(AsiTest, Theorem6LatencyCostCaseAnalysis) {
  // The three cases of the Theorem 6 proof, checked directly against
  // Cost_lat^ord: swapping adjacent subsequences u, v in an order
  // (a) leaves the cost unchanged when neither contains the anchor Tn,
  // (b) cannot increase it when v contains the anchor (u moves behind),
  // (c) symmetric when u contains the anchor.
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    int n = static_cast<int>(rng.UniformInt(4, 9));
    PatternStats stats = testing_util::RandomStats(n, rng);
    CostSpec spec;
    spec.latency_alpha = 1.0;
    spec.latency_anchor = static_cast<int>(rng.UniformInt(0, n - 1));
    CostFunction cost(stats, 2.0, spec);

    std::vector<int> slots(n);
    std::iota(slots.begin(), slots.end(), 0);
    rng.Shuffle(slots.begin(), slots.end());
    int ua = static_cast<int>(rng.UniformInt(0, n - 2));
    int ub = static_cast<int>(rng.UniformInt(ua + 1, n - 1));
    int vb = static_cast<int>(rng.UniformInt(ub + 1, n));

    std::vector<int> uv = slots;  // a u v b
    std::vector<int> vu(slots.begin(), slots.begin() + ua);  // a v u b
    vu.insert(vu.end(), slots.begin() + ub, slots.begin() + vb);
    vu.insert(vu.end(), slots.begin() + ua, slots.begin() + ub);
    vu.insert(vu.end(), slots.begin() + vb, slots.end());

    bool anchor_in_u = false;
    bool anchor_in_v = false;
    for (int i = ua; i < ub; ++i) {
      anchor_in_u = anchor_in_u || slots[i] == spec.latency_anchor;
    }
    for (int i = ub; i < vb; ++i) {
      anchor_in_v = anchor_in_v || slots[i] == spec.latency_anchor;
    }
    double c_uv = cost.OrderLatencyCost(OrderPlan(uv));
    double c_vu = cost.OrderLatencyCost(OrderPlan(vu));
    if (!anchor_in_u && !anchor_in_v) {
      EXPECT_DOUBLE_EQ(c_uv, c_vu);
    } else if (anchor_in_v) {
      EXPECT_LE(c_uv, c_vu + 1e-9);
    } else {
      EXPECT_LE(c_vu, c_uv + 1e-9);
    }
  }
}

}  // namespace
}  // namespace cepjoin
