// Monotonicity and scaling properties of the cost models — the sanity
// laws any partial-match estimator must obey.

#include <gtest/gtest.h>

#include "cost/cost_function.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

class CostPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CostPropertyTest, OrderCostIncreasesWithWindow) {
  int n = GetParam();
  Rng rng(600 + n);
  PatternStats stats = testing_util::RandomStats(n, rng);
  OrderPlan plan = OrderPlan::Identity(n);
  double previous = 0.0;
  for (double window : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    double cost = CostFunction(stats, window).OrderThroughputCost(plan);
    EXPECT_GT(cost, previous);
    previous = cost;
  }
}

TEST_P(CostPropertyTest, OrderCostIncreasesWithEachRate) {
  int n = GetParam();
  Rng rng(610 + n);
  PatternStats stats = testing_util::RandomStats(n, rng);
  OrderPlan plan = OrderPlan::Identity(n);
  double base = CostFunction(stats, 2.0).OrderThroughputCost(plan);
  for (int i = 0; i < n; ++i) {
    PatternStats bumped = stats;
    bumped.set_rate(i, stats.rate(i) * 2.0);
    EXPECT_GT(CostFunction(bumped, 2.0).OrderThroughputCost(plan), base)
        << "slot " << i;
  }
}

TEST_P(CostPropertyTest, OrderCostDecreasesWithEachSelectivity) {
  int n = GetParam();
  Rng rng(620 + n);
  PatternStats stats = testing_util::RandomStats(n, rng);
  OrderPlan plan = OrderPlan::Identity(n);
  double base = CostFunction(stats, 2.0).OrderThroughputCost(plan);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      PatternStats tightened = stats;
      tightened.set_sel(i, j, stats.sel(i, j) * 0.5);
      EXPECT_LT(CostFunction(tightened, 2.0).OrderThroughputCost(plan), base)
          << "pair " << i << "," << j;
    }
  }
}

TEST_P(CostPropertyTest, TreeCostSharesTheSameMonotonicity) {
  int n = GetParam();
  Rng rng(630 + n);
  PatternStats stats = testing_util::RandomStats(n, rng);
  TreePlan plan = TreePlan::LeftDeep(OrderPlan::Identity(n));
  double base = CostFunction(stats, 2.0).TreeThroughputCost(plan);
  PatternStats faster = stats;
  faster.set_rate(0, stats.rate(0) * 3.0);
  EXPECT_GT(CostFunction(faster, 2.0).TreeThroughputCost(plan), base);
  PatternStats tighter = stats;
  tighter.set_sel(0, n - 1, stats.sel(0, n - 1) * 0.25);
  EXPECT_LE(CostFunction(tighter, 2.0).TreeThroughputCost(plan), base);
}

TEST_P(CostPropertyTest, UnitSelectivityCostIsClosedForm) {
  // With all selectivities 1 and equal rates r, PM(k) = (W·r)^k, so
  // Cost_ord = Σ (W·r)^k — check against the geometric sum.
  int n = GetParam();
  double rate = 2.5;
  double window = 1.5;
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) stats.set_rate(i, rate);
  double x = window * rate;
  double expected = 0.0;
  double term = 1.0;
  for (int k = 1; k <= n; ++k) {
    term *= x;
    expected += term;
  }
  EXPECT_NEAR(
      CostFunction(stats, window).OrderThroughputCost(OrderPlan::Identity(n)),
      expected, expected * 1e-12);
}

TEST_P(CostPropertyTest, LatencyCostIsPositionalOnly) {
  // Cost_lat depends only on which slots follow the anchor, not on their
  // relative order.
  int n = GetParam();
  if (n < 4) return;
  Rng rng(640 + n);
  PatternStats stats = testing_util::RandomStats(n, rng);
  CostSpec spec;
  spec.latency_alpha = 1.0;
  spec.latency_anchor = 0;
  CostFunction cost(stats, 2.0, spec);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  double base = cost.OrderLatencyCost(OrderPlan(order));
  // Swap two successors of the anchor: latency unchanged.
  std::swap(order[n - 1], order[n - 2]);
  EXPECT_DOUBLE_EQ(cost.OrderLatencyCost(OrderPlan(order)), base);
}

TEST_P(CostPropertyTest, NextModelInsensitiveToNonMinimalRates) {
  // m[k] uses min(r): raising a non-minimal rate leaves the set cost
  // unchanged under the next-match model.
  int n = GetParam();
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) stats.set_rate(i, 5.0 + i);
  CostSpec spec;
  spec.model = ThroughputModel::kNextMatch;
  uint64_t full = (uint64_t{1} << n) - 1;
  double base = CostFunction(stats, 2.0, spec).OrderSetCost(full);
  PatternStats bumped = stats;
  bumped.set_rate(n - 1, 100.0);  // not the minimum
  EXPECT_DOUBLE_EQ(CostFunction(bumped, 2.0, spec).OrderSetCost(full), base);
  PatternStats lowered = stats;
  lowered.set_rate(0, 1.0);  // the minimum
  EXPECT_LT(CostFunction(lowered, 2.0, spec).OrderSetCost(full), base);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CostPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 12),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace cepjoin
