// Property tests for the paper's central theorems: the CPG cost of a plan
// equals the JQPG cost of the corresponding join plan under the Theorem 1
// reduction (|R_i| = W·r_i, f = sel), for both plan classes.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost_function.h"
#include "cost/join_cost.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, Theorem1OrderCostEqualsLeftDeepJoinCost) {
  int n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 50; ++trial) {
    PatternStats stats = testing_util::RandomStats(n, rng);
    double window = rng.UniformReal(0.5, 30.0);
    CostFunction cost(stats, window);
    JoinQuery query = JoinQueryFromPattern(stats, window);

    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(perm.begin(), perm.end());
    OrderPlan plan(perm);

    double cpg = cost.OrderThroughputCost(plan);
    double jqpg = CostLDJ(query, plan);
    EXPECT_NEAR(cpg, jqpg, std::max(cpg, 1.0) * 1e-9)
        << "order " << plan.Describe();
  }
}

TEST_P(EquivalenceTest, Theorem2TreeCostEqualsBushyJoinCost) {
  int n = GetParam();
  Rng rng(2000 + n);
  for (int trial = 0; trial < 50; ++trial) {
    PatternStats stats = testing_util::RandomStats(n, rng);
    double window = rng.UniformReal(0.5, 30.0);
    CostFunction cost(stats, window);
    JoinQuery query = JoinQueryFromPattern(stats, window);

    // Random bushy tree: repeatedly merge two random roots.
    TreePlan::Builder builder;
    std::vector<int> roots;
    for (int i = 0; i < n; ++i) roots.push_back(builder.AddLeaf(i));
    while (roots.size() > 1) {
      size_t a = static_cast<size_t>(rng.UniformInt(0, roots.size() - 1));
      std::swap(roots[a], roots.back());
      int left = roots.back();
      roots.pop_back();
      size_t b = static_cast<size_t>(rng.UniformInt(0, roots.size() - 1));
      std::swap(roots[b], roots.back());
      int right = roots.back();
      roots.pop_back();
      roots.push_back(builder.AddInternal(left, right));
    }
    TreePlan tree = builder.Build(roots[0]);

    // The tree model excludes unary selectivities (Sec. 4.2); null them
    // out so both sides measure the same quantity.
    PatternStats pure = stats;
    for (int i = 0; i < n; ++i) pure.set_sel(i, i, 1.0);
    CostFunction pure_cost(pure, window);
    JoinQuery pure_query = JoinQueryFromPattern(pure, window);

    double cpg = pure_cost.TreeThroughputCost(tree);
    double jqpg = CostBJ(pure_query, tree);
    EXPECT_NEAR(cpg, jqpg, std::max(cpg, 1.0) * 1e-9)
        << "tree " << tree.Describe();
  }
}

TEST_P(EquivalenceTest, ReductionRoundTripPreservesCosts) {
  // JQPG -> CPG direction: converting a join query to a pattern (W = max
  // |R_i|, r = |R_i|/W) and back must preserve the cost of every order.
  int n = GetParam();
  Rng rng(3000 + n);
  for (int trial = 0; trial < 20; ++trial) {
    JoinQuery query;
    query.cardinalities.resize(n);
    query.f = Matrix(n, n, 1.0);
    for (int i = 0; i < n; ++i) {
      query.cardinalities[i] = rng.UniformReal(1.0, 500.0);
      for (int j = i; j < n; ++j) {
        double f = rng.Bernoulli(0.5) ? rng.UniformReal(0.05, 1.0) : 1.0;
        query.f.At(i, j) = f;
        query.f.At(j, i) = f;
      }
    }
    PatternFromJoinResult reduced = PatternFromJoinQuery(query);
    CostFunction cost(reduced.stats, reduced.window);

    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(perm.begin(), perm.end());
    OrderPlan plan(perm);
    double jq = CostLDJ(query, plan);
    double cp = cost.OrderThroughputCost(plan);
    EXPECT_NEAR(jq, cp, std::max(jq, 1.0) * 1e-9);
  }
}

TEST_P(EquivalenceTest, LeftDeepTreeCostMatchesOrderCostWithoutUnary) {
  // A left-deep tree's internal nodes accumulate exactly the PM(k) terms
  // of the corresponding order (k >= 2), which links the two plan classes.
  int n = GetParam();
  Rng rng(4000 + n);
  PatternStats stats = testing_util::RandomStats(n, rng);
  for (int i = 0; i < n; ++i) stats.set_sel(i, i, 1.0);
  double window = 2.0;
  CostFunction cost(stats, window);
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm.begin(), perm.end());
  OrderPlan order(perm);
  TreePlan tree = TreePlan::LeftDeep(order);

  double leaf_sum = 0.0;
  for (int i = 0; i < n; ++i) leaf_sum += cost.LeafCost(i);
  double order_tail =
      cost.OrderThroughputCost(order) - cost.OrderSetCost(uint64_t{1} << order.At(0));
  EXPECT_NEAR(cost.TreeThroughputCost(tree), leaf_sum + order_tail,
              std::max(order_tail, 1.0) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EquivalenceTest, ::testing::Values(2, 3, 5, 8),
                         ::testing::PrintToStringParamName());

TEST(JoinQueryTest, FromPatternSetsCardinalities) {
  PatternStats stats(2);
  stats.set_rate(0, 3.0);
  stats.set_rate(1, 7.0);
  stats.set_sel(0, 1, 0.25);
  JoinQuery query = JoinQueryFromPattern(stats, 10.0);
  EXPECT_DOUBLE_EQ(query.cardinalities[0], 30.0);
  EXPECT_DOUBLE_EQ(query.cardinalities[1], 70.0);
  EXPECT_DOUBLE_EQ(query.f.At(0, 1), 0.25);
}

TEST(JoinQueryTest, CostLdjHandExample) {
  // Sec. 3.2 example: C(R_i, R_j) = |R_i|·|R_j|·f_ij.
  JoinQuery query;
  query.cardinalities = {10, 20};
  query.f = Matrix(2, 2, 1.0);
  query.f.At(0, 1) = 0.1;
  query.f.At(1, 0) = 0.1;
  // C1 = 10; join = 10·20·0.1 = 20.
  EXPECT_DOUBLE_EQ(CostLDJ(query, OrderPlan({0, 1})), 30.0);
}

}  // namespace
}  // namespace cepjoin
