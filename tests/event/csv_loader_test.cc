#include "event/csv_loader.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(CsvLoaderTest, LoadsWellFormedStream) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,price,difference\n"
      "MSFT,0.125,0,101.5,0.25\n"
      "GOOG,0.250,1,730.0,-1.10\n"
      "MSFT,0.500,0,101.0,-0.5\n",
      &registry);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.stream.size(), 3u);
  EXPECT_EQ(registry.size(), 2u);
  const Event& first = *result.stream[0];
  EXPECT_EQ(first.type, registry.Require("MSFT"));
  EXPECT_DOUBLE_EQ(first.ts, 0.125);
  EXPECT_EQ(first.partition, 0u);
  EXPECT_DOUBLE_EQ(first.attrs[0], 101.5);
  EXPECT_DOUBLE_EQ(first.attrs[1], 0.25);
  // Attribute schema comes from the header.
  EXPECT_EQ(registry.RequireAttr(first.type, "difference"), 1u);
}

TEST(CsvLoaderTest, SkipsBlankLines) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0,1.0\n\nA,2,0,2.0\n", &registry);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stream.size(), 2u);
}

TEST(CsvLoaderTest, AssignsSerialsAndPartitionSeqs) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,3,1\nB,2,3,2\nA,3,5,3\n", &registry);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.stream[1]->serial, 1u);
  EXPECT_EQ(result.stream[1]->partition_seq, 1u);  // second in partition 3
  EXPECT_EQ(result.stream[2]->partition_seq, 0u);  // first in partition 5
}

TEST(CsvLoaderTest, RejectsMissingHeader) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString("", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("header"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsShortRows) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2u);
}

TEST(CsvLoaderTest, RejectsOutOfOrderTimestamps) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,2,0,1\nA,1,0,1\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("non-decreasing"), std::string::npos);
  EXPECT_EQ(result.error_line, 3u);
}

TEST(CsvLoaderTest, RejectsNonNumericValues) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0,abc\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("attribute value"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsBadTimestamp) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,noon,0,1\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("timestamp"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsNonFiniteTimestamps) {
  // strtod happily parses "nan" and "inf"; NaN in particular would pass
  // the `ts < previous` ordering check (false for NaN) and then abort
  // the process inside EventStream::Append. All must be parse errors.
  for (const char* bad : {"nan", "NaN", "-nan", "inf", "Inf", "-inf"}) {
    EventTypeRegistry registry;
    CsvLoadResult result = LoadCsvStreamFromString(
        std::string("type,ts,partition,v\nA,") + bad + ",0,1\n", &registry);
    EXPECT_FALSE(result.ok) << "timestamp '" << bad << "' accepted";
    EXPECT_NE(result.error.find("timestamp"), std::string::npos) << bad;
    EXPECT_EQ(result.error_line, 2u) << bad;
  }
}

TEST(CsvLoaderTest, RejectsFractionalPartition) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,2.5,1\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("partition"), std::string::npos);
  EXPECT_EQ(result.error_line, 2u);
}

TEST(CsvLoaderTest, RejectsPartitionOverflow) {
  // 2^32 and anything larger silently truncated before the fix.
  for (const char* bad : {"4294967296", "1e12", "nan", "-1"}) {
    EventTypeRegistry registry;
    CsvLoadResult result = LoadCsvStreamFromString(
        std::string("type,ts,partition,v\nA,1,") + bad + ",1\n", &registry);
    EXPECT_FALSE(result.ok) << "partition '" << bad << "' accepted";
    EXPECT_NE(result.error.find("partition"), std::string::npos) << bad;
  }
}

TEST(CsvLoaderTest, AcceptsMaximalPartitionId) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,4294967295,1\n", &registry);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stream[0]->partition, 4294967295u);
}

TEST(CsvLoaderTest, HandlesTrailingCarriageReturns) {
  // Windows-style \r\n line endings: \r must not leak into the last
  // cell's numeric parse (or the type name).
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\r\nA,1,0,1.5\r\nB,2,1,2.5\r\n", &registry);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.stream.size(), 2u);
  EXPECT_EQ(registry.Find("A"), result.stream[0]->type);
  EXPECT_DOUBLE_EQ(result.stream[0]->attrs[0], 1.5);
  EXPECT_DOUBLE_EQ(result.stream[1]->attrs[0], 2.5);
}

TEST(CsvLoaderTest, RejectsEmptyAttributeCells) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v,w\nA,1,0,1.0,\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("attribute value"), std::string::npos);
  EXPECT_EQ(result.error_line, 2u);
}

TEST(CsvLoaderTest, PolarityColumnLoadsDeltaStream) {
  // A trailing `polarity` header column opts the file into ± semantics:
  // the loader enables retractions on the stream and Append resolves
  // each retraction to the serial of the insertion it cancels.
  EventTypeRegistry registry;
  // Without a retract_ts column a retraction targets the insertion at
  // its OWN timestamp, so it must share ts with its target.
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,price,polarity\n"
      "MSFT,1.0,0,101.5,1\n"
      "GOOG,1.5,1,730.0,+1\n"
      "MSFT,1.75,0,99.0,1\n"
      "MSFT,1.75,0,0,-1\n",
      &registry);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.stream.size(), 4u);
  EXPECT_TRUE(result.stream.retractions_enabled());
  // `polarity` is reserved, never an attribute.
  EXPECT_EQ(registry.Info(result.stream[0]->type).attribute_names.size(), 1u);
  const Event& retraction = *result.stream[3];
  ASSERT_TRUE(retraction.IsRetraction());
  EXPECT_DOUBLE_EQ(retraction.target_ts, 1.75);
  EXPECT_EQ(retraction.target_serial, result.stream[2]->serial);
  // Inserts count into type rates; retractions must not.
  EXPECT_EQ(result.stream.type_counts()[result.stream[0]->type], 2u);
}

TEST(CsvLoaderTest, RetractTsResolvesTargetSerial) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,price,polarity,retract_ts\n"
      "MSFT,1.0,0,101.5,1,\n"
      "MSFT,1.5,0,99.0,1,\n"
      "MSFT,2.0,0,0,-1,1.0\n",
      &registry);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.stream.size(), 3u);
  const Event& retraction = *result.stream[2];
  ASSERT_TRUE(retraction.IsRetraction());
  EXPECT_DOUBLE_EQ(retraction.target_ts, 1.0);
  EXPECT_EQ(retraction.target_serial, result.stream[0]->serial);
  // Retractions hold a stream serial but no partition sequence slot.
  EXPECT_EQ(retraction.serial, 2u);
  EXPECT_EQ(retraction.partition_seq, 0u);
  EXPECT_EQ(result.stream[1]->partition_seq, 1u);
}

TEST(CsvLoaderTest, DuplicateKeyRetractionResolvesLifo) {
  // Two live insertions with an identical (type, partition, ts) key:
  // the retraction cancels the most recent one.
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,price,polarity,retract_ts\n"
      "A,1.0,0,1,1,\n"
      "A,1.0,0,2,1,\n"
      "A,2.0,0,0,-1,1.0\n",
      &registry);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stream[2]->target_serial, result.stream[1]->serial);
}

TEST(CsvLoaderTest, RejectsBadPolarityValues) {
  for (const char* bad : {"0", "2", "-2", "+", "retract", "", "1.0"}) {
    EventTypeRegistry registry;
    CsvLoadResult result = LoadCsvStreamFromString(
        std::string("type,ts,partition,v,polarity\nA,1,0,1,") + bad + "\n",
        &registry);
    EXPECT_FALSE(result.ok) << "polarity '" << bad << "' accepted";
    EXPECT_NE(result.error.find("polarity"), std::string::npos) << bad;
    EXPECT_EQ(result.error_line, 2u) << bad;
  }
}

TEST(CsvLoaderTest, RejectsRetractionOfNeverInsertedKey) {
  // The source layer rejects a retraction whose (type, partition, ts)
  // key was never inserted — before it can reach (and abort in) the
  // serial-assigning stream.
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v,polarity,retract_ts\n"
      "A,1.0,0,1,1,\n"
      "A,2.0,1,0,-1,1.0\n",  // wrong partition: key never inserted
      &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no live insertion"), std::string::npos);
  EXPECT_EQ(result.error_line, 3u);
  EXPECT_EQ(result.stream.size(), 1u);  // valid prefix kept
}

TEST(CsvLoaderTest, RejectsDoubleRetraction) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v,polarity,retract_ts\n"
      "A,1.0,0,1,1,\n"
      "A,2.0,0,0,-1,1.0\n"
      "A,3.0,0,0,-1,1.0\n",  // already retracted
      &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("already retracted"), std::string::npos);
  EXPECT_EQ(result.error_line, 4u);
}

TEST(CsvLoaderTest, RejectsRetractTsAfterRowTs) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v,polarity,retract_ts\n"
      "A,1.0,0,1,1,\n"
      "A,2.0,0,0,-1,3.0\n",
      &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("retract_ts"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsNonFiniteRetractTs) {
  for (const char* bad : {"nan", "inf", "-inf", "noon"}) {
    EventTypeRegistry registry;
    CsvLoadResult result = LoadCsvStreamFromString(
        std::string("type,ts,partition,v,polarity,retract_ts\n"
                    "A,1.0,0,1,1,\n"
                    "A,2.0,0,0,-1,") +
            bad + "\n",
        &registry);
    EXPECT_FALSE(result.ok) << "retract_ts '" << bad << "' accepted";
    EXPECT_NE(result.error.find("retract_ts"), std::string::npos) << bad;
  }
}

TEST(CsvLoaderTest, RejectsRetractTsOnInsertRow) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v,polarity,retract_ts\n"
      "A,1.0,0,1,1,1.0\n",
      &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("insert rows must leave retract_ts empty"),
            std::string::npos);
}

TEST(CsvLoaderTest, RejectsRetractTsWithoutPolarity) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v,retract_ts\nA,1.0,0,1,\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("polarity"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsNonTrailingPolarityColumn) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,polarity,v\nA,1.0,0,1,2.0\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("last header column"), std::string::npos);
}

TEST(CsvLoaderTest, InsertOnlyFileWithoutPolarityColumnUnchanged) {
  // No polarity column: no delta semantics, no ledger, identical to the
  // pre-delta loader.
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0,1.0\n", &registry);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.stream.retractions_enabled());
  EXPECT_EQ(result.stream[0]->polarity, 1);
}

TEST(CsvLoaderTest, KeepsValidPrefixOnError) {
  // The loader reports the failing line and leaves the events parsed
  // before it in the stream — mirroring the async source semantics.
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0,1\nA,2,0,2\nA,bad,0,3\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 4u);
  EXPECT_EQ(result.stream.size(), 2u);
}

}  // namespace
}  // namespace cepjoin
