#include "event/csv_loader.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(CsvLoaderTest, LoadsWellFormedStream) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,price,difference\n"
      "MSFT,0.125,0,101.5,0.25\n"
      "GOOG,0.250,1,730.0,-1.10\n"
      "MSFT,0.500,0,101.0,-0.5\n",
      &registry);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.stream.size(), 3u);
  EXPECT_EQ(registry.size(), 2u);
  const Event& first = *result.stream[0];
  EXPECT_EQ(first.type, registry.Require("MSFT"));
  EXPECT_DOUBLE_EQ(first.ts, 0.125);
  EXPECT_EQ(first.partition, 0u);
  EXPECT_DOUBLE_EQ(first.attrs[0], 101.5);
  EXPECT_DOUBLE_EQ(first.attrs[1], 0.25);
  // Attribute schema comes from the header.
  EXPECT_EQ(registry.RequireAttr(first.type, "difference"), 1u);
}

TEST(CsvLoaderTest, SkipsBlankLines) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0,1.0\n\nA,2,0,2.0\n", &registry);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stream.size(), 2u);
}

TEST(CsvLoaderTest, AssignsSerialsAndPartitionSeqs) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,3,1\nB,2,3,2\nA,3,5,3\n", &registry);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.stream[1]->serial, 1u);
  EXPECT_EQ(result.stream[1]->partition_seq, 1u);  // second in partition 3
  EXPECT_EQ(result.stream[2]->partition_seq, 0u);  // first in partition 5
}

TEST(CsvLoaderTest, RejectsMissingHeader) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString("", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("header"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsShortRows) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2u);
}

TEST(CsvLoaderTest, RejectsOutOfOrderTimestamps) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,2,0,1\nA,1,0,1\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("non-decreasing"), std::string::npos);
  EXPECT_EQ(result.error_line, 3u);
}

TEST(CsvLoaderTest, RejectsNonNumericValues) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0,abc\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("attribute value"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsBadTimestamp) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,noon,0,1\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("timestamp"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsNonFiniteTimestamps) {
  // strtod happily parses "nan" and "inf"; NaN in particular would pass
  // the `ts < previous` ordering check (false for NaN) and then abort
  // the process inside EventStream::Append. All must be parse errors.
  for (const char* bad : {"nan", "NaN", "-nan", "inf", "Inf", "-inf"}) {
    EventTypeRegistry registry;
    CsvLoadResult result = LoadCsvStreamFromString(
        std::string("type,ts,partition,v\nA,") + bad + ",0,1\n", &registry);
    EXPECT_FALSE(result.ok) << "timestamp '" << bad << "' accepted";
    EXPECT_NE(result.error.find("timestamp"), std::string::npos) << bad;
    EXPECT_EQ(result.error_line, 2u) << bad;
  }
}

TEST(CsvLoaderTest, RejectsFractionalPartition) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,2.5,1\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("partition"), std::string::npos);
  EXPECT_EQ(result.error_line, 2u);
}

TEST(CsvLoaderTest, RejectsPartitionOverflow) {
  // 2^32 and anything larger silently truncated before the fix.
  for (const char* bad : {"4294967296", "1e12", "nan", "-1"}) {
    EventTypeRegistry registry;
    CsvLoadResult result = LoadCsvStreamFromString(
        std::string("type,ts,partition,v\nA,1,") + bad + ",1\n", &registry);
    EXPECT_FALSE(result.ok) << "partition '" << bad << "' accepted";
    EXPECT_NE(result.error.find("partition"), std::string::npos) << bad;
  }
}

TEST(CsvLoaderTest, AcceptsMaximalPartitionId) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,4294967295,1\n", &registry);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stream[0]->partition, 4294967295u);
}

TEST(CsvLoaderTest, HandlesTrailingCarriageReturns) {
  // Windows-style \r\n line endings: \r must not leak into the last
  // cell's numeric parse (or the type name).
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\r\nA,1,0,1.5\r\nB,2,1,2.5\r\n", &registry);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.stream.size(), 2u);
  EXPECT_EQ(registry.Find("A"), result.stream[0]->type);
  EXPECT_DOUBLE_EQ(result.stream[0]->attrs[0], 1.5);
  EXPECT_DOUBLE_EQ(result.stream[1]->attrs[0], 2.5);
}

TEST(CsvLoaderTest, RejectsEmptyAttributeCells) {
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v,w\nA,1,0,1.0,\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("attribute value"), std::string::npos);
  EXPECT_EQ(result.error_line, 2u);
}

TEST(CsvLoaderTest, KeepsValidPrefixOnError) {
  // The loader reports the failing line and leaves the events parsed
  // before it in the stream — mirroring the async source semantics.
  EventTypeRegistry registry;
  CsvLoadResult result = LoadCsvStreamFromString(
      "type,ts,partition,v\nA,1,0,1\nA,2,0,2\nA,bad,0,3\n", &registry);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 4u);
  EXPECT_EQ(result.stream.size(), 2u);
}

}  // namespace
}  // namespace cepjoin
