#include "event/stream_source.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "event/csv_loader.h"
#include "event/streaming_csv_source.h"

namespace cepjoin {
namespace {

EventStream MakeStream(std::initializer_list<double> timestamps) {
  EventStream stream;
  uint32_t partition = 0;
  for (double ts : timestamps) {
    Event e;
    e.type = 0;
    e.ts = ts;
    e.partition = partition++ % 2;
    e.attrs = {ts * 10};
    stream.Append(std::move(e));
  }
  return stream;
}

TEST(EventStreamSourceTest, ReplaysWholeStream) {
  EventStream stream = MakeStream({1, 2, 3, 4});
  EventStreamSource source(&stream);
  Event e;
  std::vector<double> seen;
  while (source.Next(&e)) {
    seen.push_back(e.ts);
    // Serials are the merge stage's job; the source must not leak the
    // materialized stream's.
    EXPECT_EQ(e.serial, 0u);
    EXPECT_EQ(e.partition_seq, 0u);
  }
  EXPECT_TRUE(source.ok());
  EXPECT_EQ(seen, (std::vector<double>{1, 2, 3, 4}));
}

TEST(EventStreamSourceTest, StrideSlicesPartitionTheStream) {
  EventStream stream = MakeStream({1, 2, 3, 4, 5});
  EventStreamSource even(&stream, 0, 2);
  EventStreamSource odd(&stream, 1, 2);
  Event e;
  std::vector<double> seen;
  while (even.Next(&e)) seen.push_back(e.ts);
  EXPECT_EQ(seen, (std::vector<double>{1, 3, 5}));
  seen.clear();
  while (odd.Next(&e)) seen.push_back(e.ts);
  EXPECT_EQ(seen, (std::vector<double>{2, 4}));
}

TEST(EventStreamSourceTest, OffsetPastEndIsEmpty) {
  EventStream stream = MakeStream({1});
  EventStreamSource source(&stream, 5, 1);
  Event e;
  EXPECT_FALSE(source.Next(&e));
  EXPECT_TRUE(source.ok());
}

TEST(StreamingCsvSourceTest, ParsesIncrementally) {
  EventTypeRegistry registry;
  StringCsvSource source(
      "type,ts,partition,price\n"
      "MSFT,0.5,0,100.0\n"
      "GOOG,1.0,1,700.0\n",
      &registry);
  Event e;
  ASSERT_TRUE(source.Next(&e));
  EXPECT_EQ(e.type, registry.Require("MSFT"));
  EXPECT_DOUBLE_EQ(e.ts, 0.5);
  EXPECT_DOUBLE_EQ(e.attrs[0], 100.0);
  ASSERT_TRUE(source.Next(&e));
  EXPECT_EQ(e.type, registry.Require("GOOG"));
  EXPECT_EQ(e.partition, 1u);
  EXPECT_FALSE(source.Next(&e));
  EXPECT_TRUE(source.ok());
}

TEST(StreamingCsvSourceTest, MatchesLoaderOnIdenticalInput) {
  const std::string csv =
      "type,ts,partition,a,b\n"
      "A,0.1,0,1,2\n"
      "B,0.2,1,3,4\n"
      "A,0.2,0,5,6\n"
      "C,0.9,2,7,8\n";
  EventTypeRegistry loader_registry;
  CsvLoadResult loaded = LoadCsvStreamFromString(csv, &loader_registry);
  ASSERT_TRUE(loaded.ok);

  EventTypeRegistry source_registry;
  StringCsvSource source(csv, &source_registry);
  Event e;
  size_t i = 0;
  while (source.Next(&e)) {
    ASSERT_LT(i, loaded.stream.size());
    const Event& want = *loaded.stream[i++];
    EXPECT_EQ(e.type, want.type);
    EXPECT_DOUBLE_EQ(e.ts, want.ts);
    EXPECT_EQ(e.partition, want.partition);
    EXPECT_EQ(e.attrs, want.attrs);
  }
  EXPECT_TRUE(source.ok());
  EXPECT_EQ(i, loaded.stream.size());
  EXPECT_EQ(source_registry.size(), loader_registry.size());
}

TEST(StreamingCsvSourceTest, ReportsErrorWithLineNumber) {
  EventTypeRegistry registry;
  StringCsvSource source(
      "type,ts,partition,v\nA,1,0,1\nA,0.5,0,2\n", &registry);
  Event e;
  ASSERT_TRUE(source.Next(&e));
  EXPECT_FALSE(source.Next(&e));
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("non-decreasing"), std::string::npos);
  EXPECT_EQ(source.line_number(), 3u);
  // Dead once failed: stays failed.
  EXPECT_FALSE(source.Next(&e));
  EXPECT_FALSE(source.ok());
}

TEST(StreamingCsvSourceTest, ReadOnlyRegistryResolvesKnownTypes) {
  EventTypeRegistry registry;
  registry.Register("A", {"v"});
  const EventTypeRegistry* frozen = &registry;
  StringCsvSource source("type,ts,partition,v\nA,1,0,1\n", frozen);
  Event e;
  ASSERT_TRUE(source.Next(&e));
  EXPECT_EQ(e.type, registry.Require("A"));
  EXPECT_FALSE(source.Next(&e));
  EXPECT_TRUE(source.ok());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(StreamingCsvSourceTest, ReadOnlyRegistryRejectsUnknownTypes) {
  EventTypeRegistry registry;
  registry.Register("A", {"v"});
  const EventTypeRegistry* frozen = &registry;
  StringCsvSource source("type,ts,partition,v\nB,1,0,1\n", frozen);
  Event e;
  EXPECT_FALSE(source.Next(&e));
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("unknown event type"), std::string::npos);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(StreamingCsvSourceTest, ErrorMessageCarriesLineNumber) {
  // The async pipeline only forwards the error string, so the line must
  // be in it — unlike the loader, which also has CsvLoadResult::error_line.
  EventTypeRegistry registry;
  StringCsvSource source(
      "type,ts,partition,v\nA,1,0,1\nA,bad,0,2\n", &registry);
  Event e;
  ASSERT_TRUE(source.Next(&e));
  EXPECT_FALSE(source.Next(&e));
  EXPECT_NE(source.error().find("line 3"), std::string::npos)
      << source.error();
}

TEST(StreamingCsvSourceTest, ReadOnlyRegistryRejectsSchemaMismatch) {
  // A known type whose registered attributes differ from the header
  // must be a parse error: accepting it would hand predicates events
  // with the wrong arity/order (out-of-bounds attr reads downstream).
  EventTypeRegistry registry;
  registry.Register("A", {"v", "w"});
  const EventTypeRegistry* frozen = &registry;
  StringCsvSource source("type,ts,partition,x\nA,1,0,1\n", frozen);
  Event e;
  EXPECT_FALSE(source.Next(&e));
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("schema"), std::string::npos)
      << source.error();
}

TEST(StreamingCsvSourceTest, MutableRegistrySchemaConflictIsParseError) {
  // Same guard on the mutable path: Register() would abort the process
  // on a conflicting schema; malformed input must fail gracefully.
  EventTypeRegistry registry;
  registry.Register("A", {"other"});
  StringCsvSource source("type,ts,partition,v\nA,1,0,1\n", &registry);
  Event e;
  EXPECT_FALSE(source.Next(&e));
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("schema"), std::string::npos);
  EXPECT_EQ(registry.size(), 1u);  // nothing new registered
}

TEST(StreamingCsvSourceTest, RejectsNonFiniteTimestampMidStream) {
  EventTypeRegistry registry;
  StringCsvSource source(
      "type,ts,partition,v\nA,1,0,1\nA,nan,0,2\n", &registry);
  Event e;
  ASSERT_TRUE(source.Next(&e));
  EXPECT_FALSE(source.Next(&e));
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("timestamp"), std::string::npos);
}

TEST(StreamingCsvSourceTest, WorksFromExternalIstream) {
  std::istringstream input("type,ts,partition,v\nA,1,0,42\n");
  EventTypeRegistry registry;
  StreamingCsvSource source(&input, &registry);
  Event e;
  ASSERT_TRUE(source.Next(&e));
  EXPECT_DOUBLE_EQ(e.attrs[0], 42.0);
  EXPECT_FALSE(source.Next(&e));
  EXPECT_TRUE(source.ok());
}

}  // namespace
}  // namespace cepjoin
