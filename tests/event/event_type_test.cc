#include "event/event_type.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(EventTypeRegistryTest, RegisterAssignsDenseIds) {
  EventTypeRegistry registry;
  TypeId a = registry.Register("A", {"x"});
  TypeId b = registry.Register("B", {"x", "y"});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(EventTypeRegistryTest, ReRegisterSameSchemaReturnsSameId) {
  EventTypeRegistry registry;
  TypeId a1 = registry.Register("A", {"x"});
  TypeId a2 = registry.Register("A", {"x"});
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(EventTypeRegistryTest, FindAndRequire) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  EXPECT_EQ(registry.Find("A"), 0u);
  EXPECT_EQ(registry.Find("missing"), kInvalidTypeId);
  EXPECT_EQ(registry.Require("A"), 0u);
}

TEST(EventTypeRegistryTest, RequireAttrResolvesIndex) {
  EventTypeRegistry registry;
  TypeId a = registry.Register("A", {"price", "difference"});
  EXPECT_EQ(registry.RequireAttr(a, "price"), 0u);
  EXPECT_EQ(registry.RequireAttr(a, "difference"), 1u);
}

TEST(EventTypeRegistryTest, InfoRoundTrips) {
  EventTypeRegistry registry;
  TypeId a = registry.Register("A", {"x"});
  const EventTypeInfo& info = registry.Info(a);
  EXPECT_EQ(info.name, "A");
  EXPECT_EQ(info.attribute_names.size(), 1u);
}

TEST(EventTypeRegistryDeathTest, ConflictingSchemaAborts) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  EXPECT_DEATH(registry.Register("A", {"y"}), "different schema");
}

TEST(EventTypeRegistryDeathTest, RequireUnknownAborts) {
  EventTypeRegistry registry;
  EXPECT_DEATH(registry.Require("nope"), "unknown event type");
}

}  // namespace
}  // namespace cepjoin
