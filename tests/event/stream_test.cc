#include "event/stream.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

Event MakeEvent(TypeId type, Timestamp ts, uint32_t partition = 0) {
  Event e;
  e.type = type;
  e.ts = ts;
  e.partition = partition;
  e.attrs = {1.0};
  return e;
}

TEST(EventStreamTest, AssignsSerialsInOrder) {
  EventStream stream;
  stream.Append(MakeEvent(0, 0.0));
  stream.Append(MakeEvent(1, 0.5));
  stream.Append(MakeEvent(0, 1.0));
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream[0]->serial, 0u);
  EXPECT_EQ(stream[1]->serial, 1u);
  EXPECT_EQ(stream[2]->serial, 2u);
}

TEST(EventStreamTest, AssignsPerPartitionSequences) {
  EventStream stream;
  stream.Append(MakeEvent(0, 0.0, /*partition=*/0));
  stream.Append(MakeEvent(1, 0.1, /*partition=*/1));
  stream.Append(MakeEvent(0, 0.2, /*partition=*/0));
  stream.Append(MakeEvent(1, 0.3, /*partition=*/1));
  EXPECT_EQ(stream[0]->partition_seq, 0u);
  EXPECT_EQ(stream[1]->partition_seq, 0u);
  EXPECT_EQ(stream[2]->partition_seq, 1u);
  EXPECT_EQ(stream[3]->partition_seq, 1u);
}

TEST(EventStreamTest, TracksTypeCounts) {
  EventStream stream;
  stream.Append(MakeEvent(0, 0.0));
  stream.Append(MakeEvent(2, 0.5));
  stream.Append(MakeEvent(2, 1.0));
  ASSERT_GE(stream.type_counts().size(), 3u);
  EXPECT_EQ(stream.type_counts()[0], 1u);
  EXPECT_EQ(stream.type_counts()[1], 0u);
  EXPECT_EQ(stream.type_counts()[2], 2u);
}

TEST(EventStreamTest, DurationAndEndpoints) {
  EventStream stream;
  EXPECT_DOUBLE_EQ(stream.Duration(), 0.0);
  stream.Append(MakeEvent(0, 2.0));
  stream.Append(MakeEvent(0, 5.0));
  EXPECT_DOUBLE_EQ(stream.begin_ts(), 2.0);
  EXPECT_DOUBLE_EQ(stream.end_ts(), 5.0);
  EXPECT_DOUBLE_EQ(stream.Duration(), 3.0);
}

TEST(EventStreamTest, EqualTimestampsAllowed) {
  EventStream stream;
  stream.Append(MakeEvent(0, 1.0));
  stream.Append(MakeEvent(1, 1.0));
  EXPECT_EQ(stream.size(), 2u);
}

TEST(EventStreamTest, SparsePartitionIdsCostNoDenseMemory) {
  // Per-partition sequencing must handle ids up to UINT32_MAX without
  // allocating an id-indexed dense array (34 GB for this id).
  EventStream stream;
  stream.Append(MakeEvent(0, 1.0, 4294967295u));
  stream.Append(MakeEvent(0, 2.0, 4294967295u));
  stream.Append(MakeEvent(0, 3.0, 7u));
  EXPECT_EQ(stream[0]->partition_seq, 0u);
  EXPECT_EQ(stream[1]->partition_seq, 1u);
  EXPECT_EQ(stream[2]->partition_seq, 0u);
}

Event MakeRetraction(TypeId type, Timestamp ts, Timestamp target_ts,
                     uint32_t partition = 0) {
  Event r;
  r.type = type;
  r.ts = ts;
  r.partition = partition;
  r.polarity = -1;
  r.target_ts = target_ts;
  return r;
}

TEST(EventStreamTest, RetractionResolvesToTargetSerial) {
  EventStream stream;
  stream.EnableRetractions();
  stream.Append(MakeEvent(0, 1.0));
  stream.Append(MakeEvent(0, 2.0));
  stream.Append(MakeRetraction(0, 3.0, 1.0));
  ASSERT_EQ(stream.size(), 3u);
  const Event& r = *stream[2];
  EXPECT_TRUE(r.IsRetraction());
  EXPECT_EQ(r.serial, 2u);                       // holds a stream serial
  EXPECT_EQ(r.target_serial, stream[0]->serial);  // resolved to its target
}

TEST(EventStreamTest, RetractionSkipsPartitionSeqAndTypeCounts) {
  // A retraction is a command about an earlier event, not an
  // occurrence: it must not advance the partition sequencer (contiguity
  // strategies count occurrences) nor the type rates (statistics).
  EventStream stream;
  stream.EnableRetractions();
  stream.Append(MakeEvent(0, 1.0, /*partition=*/3));
  stream.Append(MakeRetraction(0, 2.0, 1.0, /*partition=*/3));
  stream.Append(MakeEvent(0, 3.0, /*partition=*/3));
  EXPECT_EQ(stream[1]->partition_seq, 0u);
  EXPECT_EQ(stream[2]->partition_seq, 1u);  // second OCCURRENCE in 3
  EXPECT_EQ(stream.type_counts()[0], 2u);   // inserts only
}

TEST(EventStreamTest, DuplicateKeyResolvesMostRecentInsertion) {
  EventStream stream;
  stream.EnableRetractions();
  stream.Append(MakeEvent(0, 1.0));
  stream.Append(MakeEvent(0, 1.0));  // same (type, partition, ts) key
  stream.Append(MakeRetraction(0, 2.0, 1.0));
  stream.Append(MakeRetraction(0, 3.0, 1.0));
  EXPECT_EQ(stream[2]->target_serial, 1u);  // LIFO: newest first
  EXPECT_EQ(stream[3]->target_serial, 0u);
}

TEST(EventStreamDeathTest, RetractionWithoutEnableAborts) {
  EventStream stream;
  stream.Append(MakeEvent(0, 1.0));
  EXPECT_DEATH(stream.Append(MakeRetraction(0, 2.0, 1.0)),
               "EnableRetractions");
}

TEST(EventStreamDeathTest, UnresolvableRetractionAborts) {
  // Appending an unresolvable retraction is a programmer error at this
  // layer; untrusted input is validated by the sources (Status) before
  // it reaches the stream.
  EventStream stream;
  stream.EnableRetractions();
  stream.Append(MakeEvent(0, 1.0));
  EXPECT_DEATH(stream.Append(MakeRetraction(0, 2.0, 1.5)),
               "no live insertion");
}

TEST(EventStreamDeathTest, OutOfOrderAppendAborts) {
  EventStream stream;
  stream.Append(MakeEvent(0, 1.0));
  EXPECT_DEATH(stream.Append(MakeEvent(0, 0.5)), "timestamp order");
}

}  // namespace
}  // namespace cepjoin
