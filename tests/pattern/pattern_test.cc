#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::MakeWorld;
using testing_util::World;

TEST(SimplePatternTest, PurePatternClassification) {
  World world = MakeWorld();
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10);
  EXPECT_TRUE(p.is_pure());
  EXPECT_FALSE(p.has_kleene());
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.num_positive(), 3);
  EXPECT_TRUE(p.negated_positions().empty());
}

TEST(SimplePatternTest, NegatedAndKleeneBookkeeping) {
  World world = MakeWorld();
  std::vector<EventSpec> events = {
      {world.types[0], "a", false, false},
      {world.types[1], "b", true, false},
      {world.types[2], "c", false, true},
      {world.types[3], "d", false, false},
  };
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  EXPECT_FALSE(p.is_pure());
  EXPECT_TRUE(p.has_kleene());
  EXPECT_EQ(p.num_positive(), 3);
  EXPECT_EQ(p.positive_positions(), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(p.negated_positions(), (std::vector<int>{1}));
}

TEST(SimplePatternTest, WithStrategyPreservesStructure) {
  World world = MakeWorld();
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kAnd, 3, 10);
  SimplePattern q = p.WithStrategy(SelectionStrategy::kSkipTillNext);
  EXPECT_EQ(q.strategy(), SelectionStrategy::kSkipTillNext);
  EXPECT_EQ(q.size(), p.size());
  EXPECT_EQ(q.op(), p.op());
}

TEST(SimplePatternTest, DescribeMentionsOperatorsAndWindow) {
  World world = MakeWorld();
  std::vector<EventSpec> events = {
      {world.types[0], "a", false, false},
      {world.types[1], "b", true, false},
  };
  SimplePattern p(OperatorKind::kSeq, events, {}, 20.0);
  std::string text = p.Describe(&world.registry);
  EXPECT_NE(text.find("SEQ"), std::string::npos);
  EXPECT_NE(text.find("NOT"), std::string::npos);
  EXPECT_NE(text.find("WITHIN 20"), std::string::npos);
  EXPECT_NE(text.find("B b"), std::string::npos);
}

TEST(SimplePatternDeathTest, RejectsInvalidConstructions) {
  World world = MakeWorld();
  std::vector<EventSpec> one = {{world.types[0], "a", false, false}};
  EXPECT_DEATH(SimplePattern(OperatorKind::kOr, one, {}, 10.0), "OR is only");
  EXPECT_DEATH(SimplePattern(OperatorKind::kSeq, one, {}, 0.0),
               "positive time window");
  std::vector<EventSpec> both = {{world.types[0], "a", true, true}};
  EXPECT_DEATH(SimplePattern(OperatorKind::kSeq, both, {}, 10.0),
               "negated and Kleene");
  std::vector<EventSpec> all_neg = {{world.types[0], "a", true, false}};
  EXPECT_DEATH(SimplePattern(OperatorKind::kSeq, all_neg, {}, 10.0),
               "at least one positive");
}

TEST(PatternBuilderTest, BuildsFourCamerasPattern) {
  // The paper's introduction example: SEQ(A, B, C, D) on vehicle ids.
  EventTypeRegistry registry;
  for (const char* name : {"CamA", "CamB", "CamC", "CamD"}) {
    registry.Register(name, {"vehicleID"});
  }
  SimplePattern p = PatternBuilder(OperatorKind::kSeq, registry)
                        .Event("CamA", "a")
                        .Event("CamB", "b")
                        .Event("CamC", "c")
                        .Event("CamD", "d")
                        .Where("a", "vehicleID", CmpOp::kEq, "b", "vehicleID")
                        .Where("b", "vehicleID", CmpOp::kEq, "c", "vehicleID")
                        .Where("c", "vehicleID", CmpOp::kEq, "d", "vehicleID")
                        .Within(600)
                        .Build();
  EXPECT_EQ(p.size(), 4);
  EXPECT_EQ(p.conditions().size(), 3u);
  EXPECT_EQ(p.op(), OperatorKind::kSeq);
}

TEST(PatternBuilderTest, WhereConstAddsUnary) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  SimplePattern p = PatternBuilder(OperatorKind::kAnd, registry)
                        .Event("A", "a")
                        .Event("A", "a2")
                        .WhereConst("a", "x", CmpOp::kGt, 5.0)
                        .Within(10)
                        .Build();
  ASSERT_EQ(p.conditions().size(), 1u);
  EXPECT_TRUE(p.conditions()[0]->unary());
  EXPECT_EQ(p.conditions()[0]->left(), 0);
}

TEST(PatternBuilderDeathTest, UnknownNameAborts) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  PatternBuilder builder(OperatorKind::kSeq, registry);
  builder.Event("A", "a");
  EXPECT_DEATH(builder.PositionOf("zz"), "no event named");
}

}  // namespace
}  // namespace cepjoin
