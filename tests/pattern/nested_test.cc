#include "pattern/nested.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::MakeWorld;
using testing_util::World;

std::shared_ptr<const PatternNode> Leaf(const World& world, int type_idx,
                                        const std::string& name,
                                        bool negated = false,
                                        bool kleene = false) {
  return PatternNode::Leaf(
      EventSpec{world.types[type_idx], name, negated, kleene});
}

TEST(ToDnfTest, DisjunctionOfSequencesSplitsIntoSeqPatterns) {
  World world = MakeWorld();
  // OR(SEQ(A, B), SEQ(C, D)) — like the disjunction benchmark patterns.
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kOr,
      {PatternNode::Op(OperatorKind::kSeq,
                       {Leaf(world, 0, "a"), Leaf(world, 1, "b")}),
       PatternNode::Op(OperatorKind::kSeq,
                       {Leaf(world, 2, "c"), Leaf(world, 3, "d")})});
  nested.window = 10.0;
  std::vector<SimplePattern> dnf = ToDnf(nested);
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0].op(), OperatorKind::kSeq);
  EXPECT_EQ(dnf[1].op(), OperatorKind::kSeq);
  EXPECT_EQ(dnf[0].size(), 2);
  EXPECT_EQ(dnf[0].events()[0].name, "a");
  EXPECT_EQ(dnf[1].events()[0].name, "c");
}

TEST(ToDnfTest, PaperNestedExample) {
  World world = MakeWorld();
  // AND(A, B, OR(C, D)) -> AND(A,B,C) ∪ AND(A,B,D)  (Sec. 5.4).
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kAnd,
      {Leaf(world, 0, "a"), Leaf(world, 1, "b"),
       PatternNode::Op(OperatorKind::kOr,
                       {Leaf(world, 2, "c"), Leaf(world, 3, "d")})});
  nested.window = 10.0;
  std::vector<SimplePattern> dnf = ToDnf(nested);
  ASSERT_EQ(dnf.size(), 2u);
  for (const SimplePattern& p : dnf) {
    EXPECT_EQ(p.size(), 3);
    EXPECT_EQ(p.events()[0].name, "a");
    EXPECT_EQ(p.events()[1].name, "b");
  }
  EXPECT_EQ(dnf[0].events()[2].name, "c");
  EXPECT_EQ(dnf[1].events()[2].name, "d");
}

TEST(ToDnfTest, SeqOverOrDistributes) {
  World world = MakeWorld();
  // SEQ(A, OR(B, C), D) -> SEQ(A,B,D) ∪ SEQ(A,C,D).
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kSeq,
      {Leaf(world, 0, "a"),
       PatternNode::Op(OperatorKind::kOr,
                       {Leaf(world, 1, "b"), Leaf(world, 2, "c")}),
       Leaf(world, 3, "d")});
  nested.window = 5.0;
  std::vector<SimplePattern> dnf = ToDnf(nested);
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0].op(), OperatorKind::kSeq);
  EXPECT_EQ(dnf[0].events()[1].name, "b");
  EXPECT_EQ(dnf[1].events()[1].name, "c");
}

TEST(ToDnfTest, MixedAndSeqBecomesAndWithTsOrders) {
  World world = MakeWorld();
  // AND(SEQ(A, B), C): alternative is unordered overall, so it compiles
  // to AND with an explicit a.ts < b.ts condition.
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kAnd,
      {PatternNode::Op(OperatorKind::kSeq,
                       {Leaf(world, 0, "a"), Leaf(world, 1, "b")}),
       Leaf(world, 2, "c")});
  nested.window = 5.0;
  std::vector<SimplePattern> dnf = ToDnf(nested);
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0].op(), OperatorKind::kAnd);
  ASSERT_EQ(dnf[0].conditions().size(), 1u);
  EXPECT_EQ(dnf[0].conditions()[0]->left(), 0);
  EXPECT_EQ(dnf[0].conditions()[0]->right(), 1);
}

TEST(ToDnfTest, NamedConditionsFilteredPerAlternative) {
  World world = MakeWorld();
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kOr,
      {PatternNode::Op(OperatorKind::kSeq,
                       {Leaf(world, 0, "a"), Leaf(world, 1, "b")}),
       PatternNode::Op(OperatorKind::kSeq,
                       {Leaf(world, 0, "a2"), Leaf(world, 2, "c")})});
  nested.window = 10.0;
  nested.conditions.push_back(MakeNamedAttrCompare(
      world.registry, world.types[0], "a", "v", CmpOp::kLt, world.types[1],
      "b", "v"));
  std::vector<SimplePattern> dnf = ToDnf(nested);
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0].conditions().size(), 1u);  // a,b present
  EXPECT_EQ(dnf[1].conditions().size(), 0u);  // a missing in alternative 2
}

TEST(ToDnfTest, CrossProductOfTwoOrs) {
  World world = MakeWorld();
  // AND(OR(A,B), OR(C,D)) -> 4 alternatives.
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kAnd,
      {PatternNode::Op(OperatorKind::kOr,
                       {Leaf(world, 0, "a"), Leaf(world, 1, "b")}),
       PatternNode::Op(OperatorKind::kOr,
                       {Leaf(world, 2, "c"), Leaf(world, 3, "d")})});
  nested.window = 5.0;
  EXPECT_EQ(ToDnf(nested).size(), 4u);
}

TEST(ToDnfTest, NegatedLeafSurvivesDecomposition) {
  World world = MakeWorld();
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kSeq,
      {Leaf(world, 0, "a"), Leaf(world, 1, "b", /*negated=*/true),
       Leaf(world, 2, "c")});
  nested.window = 5.0;
  std::vector<SimplePattern> dnf = ToDnf(nested);
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0].negated_positions(), (std::vector<int>{1}));
}

TEST(ToDnfDeathTest, DuplicateNamesInAlternativeAbort) {
  World world = MakeWorld();
  NestedPattern nested;
  nested.root = PatternNode::Op(
      OperatorKind::kAnd, {Leaf(world, 0, "a"), Leaf(world, 1, "a")});
  nested.window = 5.0;
  EXPECT_DEATH(ToDnf(nested), "duplicate event name");
}

}  // namespace
}  // namespace cepjoin
