#include "pattern/condition.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;

TEST(CmpOpTest, AllOperatorsApply) {
  EXPECT_TRUE(CmpApply(CmpOp::kLt, 1, 2));
  EXPECT_FALSE(CmpApply(CmpOp::kLt, 2, 2));
  EXPECT_TRUE(CmpApply(CmpOp::kLe, 2, 2));
  EXPECT_TRUE(CmpApply(CmpOp::kGt, 3, 2));
  EXPECT_TRUE(CmpApply(CmpOp::kGe, 2, 2));
  EXPECT_TRUE(CmpApply(CmpOp::kEq, 2, 2));
  EXPECT_TRUE(CmpApply(CmpOp::kNe, 1, 2));
}

TEST(AttrCompareTest, EvaluatesWithOffset) {
  AttrCompare cond(0, 0, CmpOp::kLt, 1, 0, /*offset=*/1.0);
  Event a = Ev(0, 0.0, 2.0);
  Event b = Ev(1, 1.0, 1.5);
  // 2.0 < 1.5 + 1.0 ?
  EXPECT_TRUE(cond.Eval(a, b));
  Event c = Ev(1, 1.0, 0.5);
  EXPECT_FALSE(cond.Eval(a, c));
}

TEST(AttrThresholdTest, UnaryFilter) {
  AttrThreshold cond(0, 0, CmpOp::kGe, 5.0);
  EXPECT_TRUE(cond.unary());
  Event a = Ev(0, 0.0, 5.0);
  Event b = Ev(0, 0.0, 4.9);
  EXPECT_TRUE(cond.Eval(a, a));
  EXPECT_FALSE(cond.Eval(b, b));
}

TEST(TsOrderTest, ComparesTimestampsAndDeclaresHalf) {
  TsOrder cond(0, 1);
  Event a = Ev(0, 1.0);
  Event b = Ev(1, 2.0);
  EXPECT_TRUE(cond.Eval(a, b));
  EXPECT_FALSE(cond.Eval(b, a));
  EXPECT_DOUBLE_EQ(cond.DeclaredSelectivity(), 0.5);
}

TEST(SerialAdjacentTest, RequiresConsecutiveSerials) {
  SerialAdjacent cond(0, 1, 0.001);
  Event a = Ev(0, 1.0);
  a.serial = 10;
  Event b = Ev(1, 2.0);
  b.serial = 11;
  Event c = Ev(1, 3.0);
  c.serial = 12;
  EXPECT_TRUE(cond.Eval(a, b));
  EXPECT_FALSE(cond.Eval(a, c));
  EXPECT_DOUBLE_EQ(cond.DeclaredSelectivity(), 0.001);
}

TEST(PartitionAdjacentTest, OnlyConstrainsSamePartition) {
  PartitionAdjacent cond(0, 1, 0.01);
  Event a = Ev(0, 1.0, 0.0, /*partition=*/1);
  a.partition_seq = 5;
  Event b = Ev(1, 2.0, 0.0, /*partition=*/1);
  b.partition_seq = 6;
  Event c = Ev(1, 2.0, 0.0, /*partition=*/1);
  c.partition_seq = 7;
  Event d = Ev(1, 2.0, 0.0, /*partition=*/2);
  d.partition_seq = 99;
  EXPECT_TRUE(cond.Eval(a, b));
  EXPECT_FALSE(cond.Eval(a, c));
  EXPECT_TRUE(cond.Eval(a, d));  // different partition: unconstrained
}

TEST(CustomConditionTest, DelegatesToFunction) {
  CustomCondition cond(
      0, 1, [](const Event& l, const Event& r) { return l.ts + r.ts > 3.0; },
      0.25, "sum-ts");
  Event a = Ev(0, 1.0);
  Event b = Ev(1, 2.5);
  EXPECT_TRUE(cond.Eval(a, b));
  EXPECT_DOUBLE_EQ(cond.DeclaredSelectivity(), 0.25);
  EXPECT_EQ(cond.Describe(), "sum-ts");
}

TEST(ConditionTest, DefaultSelectivityIsNaN) {
  AttrCompare cond(0, 0, CmpOp::kLt, 1, 0);
  EXPECT_TRUE(std::isnan(cond.DeclaredSelectivity()));
}

TEST(ConditionSetTest, BucketsByNormalizedPair) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<TsOrder>(2, 0),
      std::make_shared<TsOrder>(0, 1),
      std::make_shared<AttrThreshold>(1, 0, CmpOp::kGt, 0.0),
  };
  ConditionSet set(3, conditions);
  EXPECT_EQ(set.Between(0, 2).size(), 1u);
  EXPECT_EQ(set.Between(2, 0).size(), 1u);
  EXPECT_EQ(set.Between(0, 1).size(), 1u);
  EXPECT_EQ(set.Between(1, 2).size(), 0u);
  EXPECT_EQ(set.UnaryAt(1).size(), 1u);
  EXPECT_EQ(set.UnaryAt(0).size(), 0u);
}

TEST(ConditionSetTest, EvalPairRespectsOrientation) {
  // Condition is "e2.ts < e0.ts": when evaluating positions (0, 2) the
  // set must bind arguments in the condition's own orientation.
  std::vector<ConditionPtr> conditions = {std::make_shared<TsOrder>(2, 0)};
  ConditionSet set(3, conditions);
  Event early = Ev(0, 1.0);
  Event late = Ev(0, 2.0);
  // position 0 = late, position 2 = early: e2.ts < e0.ts holds.
  EXPECT_TRUE(set.EvalPair(0, 2, late, early));
  EXPECT_TRUE(set.EvalPair(2, 0, early, late));
  EXPECT_FALSE(set.EvalPair(0, 2, early, late));
}

TEST(ConditionSetTest, EvalUnaryAppliesAllFilters) {
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrThreshold>(0, 0, CmpOp::kGt, 1.0),
      std::make_shared<AttrThreshold>(0, 0, CmpOp::kLt, 3.0),
  };
  ConditionSet set(1, conditions);
  EXPECT_TRUE(set.EvalUnary(0, Ev(0, 0.0, 2.0)));
  EXPECT_FALSE(set.EvalUnary(0, Ev(0, 0.0, 0.5)));
  EXPECT_FALSE(set.EvalUnary(0, Ev(0, 0.0, 3.5)));
}

TEST(ConditionSetDeathTest, OutOfRangePositionAborts) {
  std::vector<ConditionPtr> conditions = {std::make_shared<TsOrder>(0, 5)};
  EXPECT_DEATH(ConditionSet(3, conditions), "outside the pattern");
}

}  // namespace
}  // namespace cepjoin
