#include "pattern/parser.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::MakeWorld;
using testing_util::World;

TEST(ParserTest, ParsesPaperFourCamerasPattern) {
  EventTypeRegistry registry;
  for (const char* name : {"A", "B", "C", "D"}) {
    registry.Register(name, {"vehicleID"});
  }
  SimplePattern p = MustParseSimple(
      "PATTERN SEQ(A a, B b, C c, D d) "
      "WHERE a.vehicleID = b.vehicleID AND b.vehicleID = c.vehicleID "
      "AND c.vehicleID = d.vehicleID "
      "WITHIN 10 minutes",
      registry);
  EXPECT_EQ(p.op(), OperatorKind::kSeq);
  EXPECT_EQ(p.size(), 4);
  EXPECT_EQ(p.conditions().size(), 3u);
  EXPECT_DOUBLE_EQ(p.window(), 600.0);
}

TEST(ParserTest, ParsesPaperNestedExample) {
  // "PATTERN AND (A a, NOT (B b), OR (C c, D d)) WITHIN W" (Sec. 2.1).
  EventTypeRegistry registry;
  for (const char* name : {"A", "B", "C", "D"}) registry.Register(name, {"x"});
  ParseResult result = ParsePattern(
      "PATTERN AND(A a, NOT(B b), OR(C c, D d)) WITHIN 20 s", registry);
  ASSERT_TRUE(result.ok) << result.error;
  std::vector<SimplePattern> dnf = ToDnf(result.pattern);
  ASSERT_EQ(dnf.size(), 2u);  // AND(A,B',C) ∪ AND(A,B',D)
  for (const SimplePattern& p : dnf) {
    EXPECT_EQ(p.size(), 3);
    EXPECT_EQ(p.negated_positions().size(), 1u);
  }
}

TEST(ParserTest, ParsesKleeneAndUnaryFilters) {
  EventTypeRegistry registry;
  registry.Register("A", {"price"});
  registry.Register("B", {"price"});
  SimplePattern p = MustParseSimple(
      "PATTERN SEQ(A a, KL(B b)) WHERE b.price > 100.5 AND a.price <= 99 "
      "WITHIN 5",
      registry);
  EXPECT_TRUE(p.has_kleene());
  EXPECT_TRUE(p.events()[1].kleene);
  EXPECT_EQ(p.conditions().size(), 2u);
  for (const ConditionPtr& c : p.conditions()) EXPECT_TRUE(c->unary());
  EXPECT_DOUBLE_EQ(p.window(), 5.0);
}

TEST(ParserTest, ConstantOnLeftIsMirrored) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  registry.Register("B", {"x"});
  SimplePattern p = MustParseSimple(
      "PATTERN SEQ(A a, B b) WHERE 5 < a.x WITHIN 1", registry);
  ASSERT_EQ(p.conditions().size(), 1u);
  Event low = testing_util::Ev(0, 0.0, 4.0);
  Event high = testing_util::Ev(0, 0.0, 6.0);
  EXPECT_FALSE(p.conditions()[0]->Eval(low, low));
  EXPECT_TRUE(p.conditions()[0]->Eval(high, high));
}

TEST(ParserTest, ParsesStrategyClause) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  registry.Register("B", {"x"});
  SimplePattern p = MustParseSimple(
      "PATTERN SEQ(A a, B b) WITHIN 2 s STRATEGY skip-till-next-match",
      registry);
  EXPECT_EQ(p.strategy(), SelectionStrategy::kSkipTillNext);
}

TEST(ParserTest, TimeUnits) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  registry.Register("B", {"x"});
  EXPECT_DOUBLE_EQ(
      MustParseSimple("PATTERN SEQ(A a, B b) WITHIN 500 ms", registry)
          .window(),
      0.5);
  EXPECT_DOUBLE_EQ(
      MustParseSimple("PATTERN SEQ(A a, B b) WITHIN 2 hours", registry)
          .window(),
      7200.0);
  EXPECT_DOUBLE_EQ(
      MustParseSimple("PATTERN SEQ(A a, B b) WITHIN 3", registry).window(),
      3.0);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  registry.Register("B", {"x"});
  ParseResult result = ParsePattern(
      "pattern seq(A a, B b) where a.x < b.x within 1 s", registry);
  EXPECT_TRUE(result.ok) << result.error;
}

struct BadInput {
  const char* text;
  const char* expected_error;
};

class ParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrorTest, ReportsError) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  registry.Register("B", {"x"});
  ParseResult result = ParsePattern(GetParam().text, registry);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(GetParam().expected_error), std::string::npos)
      << "actual error: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadInput{"SEQ(A a) WITHIN 1", "expected 'PATTERN'"},
        BadInput{"PATTERN SEQ(Z z) WITHIN 1", "unknown event type"},
        BadInput{"PATTERN SEQ(A a, A a) WITHIN 1", "duplicate event name"},
        BadInput{"PATTERN SEQ(A a, B b) WHERE a.y < b.x WITHIN 1",
                 "no attribute"},
        BadInput{"PATTERN SEQ(A a, B b) WHERE c.x < b.x WITHIN 1",
                 "undeclared event"},
        BadInput{"PATTERN SEQ(A a, B b) WHERE 1 < 2 WITHIN 1",
                 "two constants"},
        BadInput{"PATTERN SEQ(A a, B b) WITHIN 0", "positive"},
        BadInput{"PATTERN SEQ(A a, B b) WITHIN 1 fortnights", "time unit"},
        BadInput{"PATTERN SEQ(A a, B b) WITHIN 1 s STRATEGY eager",
                 "unknown selection strategy"},
        BadInput{"PATTERN SEQ(A a, B b) WITHIN 1 s trailing",
                 "trailing input"},
        BadInput{"PATTERN SEQ(A a B b) WITHIN 1", "expected ')'"}));

TEST(ParserTest, ErrorOffsetPointsNearProblem) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  std::string text = "PATTERN SEQ(A a, Zebra z) WITHIN 1";
  ParseResult result = ParsePattern(text, registry);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(text.substr(result.error_offset, 5), "Zebra");
}

TEST(ParserTest, MustParseSimpleDiesOnDisjunction) {
  EventTypeRegistry registry;
  registry.Register("A", {"x"});
  registry.Register("B", {"x"});
  EXPECT_DEATH(
      MustParseSimple("PATTERN OR(A a, B b) WITHIN 1", registry),
      "alternatives");
}

}  // namespace
}  // namespace cepjoin
