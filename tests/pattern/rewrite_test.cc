#include "pattern/rewrite.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::MakeWorld;
using testing_util::World;

int CountTsOrders(const SimplePattern& p) {
  int count = 0;
  for (const ConditionPtr& c : p.conditions()) {
    if (dynamic_cast<const TsOrder*>(c.get()) != nullptr) ++count;
  }
  return count;
}

TEST(SeqToAndTest, AddsTsOrderClosure) {
  World world = MakeWorld();
  SimplePattern seq = testing_util::PurePattern(world, OperatorKind::kSeq, 4, 10);
  SimplePattern rewritten = SeqToAnd(seq);
  EXPECT_EQ(rewritten.op(), OperatorKind::kAnd);
  // All pairs i < j over 4 positions: 6 TsOrder conditions.
  EXPECT_EQ(CountTsOrders(rewritten), 6);
  EXPECT_EQ(rewritten.window(), seq.window());
  EXPECT_EQ(rewritten.size(), seq.size());
}

TEST(SeqToAndTest, AndPatternUnchanged) {
  World world = MakeWorld();
  SimplePattern conj = testing_util::PurePattern(world, OperatorKind::kAnd, 3, 10);
  SimplePattern rewritten = SeqToAnd(conj);
  EXPECT_EQ(rewritten.op(), OperatorKind::kAnd);
  EXPECT_EQ(CountTsOrders(rewritten), 0);
}

TEST(SeqToAndTest, PreservesUserConditions) {
  World world = MakeWorld();
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 0)};
  SimplePattern seq(OperatorKind::kSeq, events, conditions, 10.0);
  SimplePattern rewritten = SeqToAnd(seq);
  EXPECT_EQ(rewritten.conditions().size(), 2u);  // user + 1 TsOrder
}

TEST(SeqToAndTest, CoversNegatedPositions) {
  World world = MakeWorld();
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern seq(OperatorKind::kSeq, events, {}, 10.0);
  SimplePattern rewritten = SeqToAnd(seq);
  // Pairs including the negated slot are covered: (0,1), (0,2), (1,2).
  EXPECT_EQ(CountTsOrders(rewritten), 3);
}

TEST(AddContiguityTest, StrictAddsSerialAdjacency) {
  World world = MakeWorld();
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10)
          .WithStrategy(SelectionStrategy::kStrictContiguity);
  SimplePattern rewritten = AddContiguityConditions(p, 0.001);
  int adjacency = 0;
  for (const ConditionPtr& c : rewritten.conditions()) {
    if (dynamic_cast<const SerialAdjacent*>(c.get()) != nullptr) {
      EXPECT_DOUBLE_EQ(c->DeclaredSelectivity(), 0.001);
      ++adjacency;
    }
  }
  EXPECT_EQ(adjacency, 2);  // consecutive positive pairs
}

TEST(AddContiguityTest, PartitionAddsPartitionAdjacency) {
  World world = MakeWorld();
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 4, 10)
          .WithStrategy(SelectionStrategy::kPartitionContiguity);
  SimplePattern rewritten = AddContiguityConditions(p, 0.01);
  int adjacency = 0;
  for (const ConditionPtr& c : rewritten.conditions()) {
    if (dynamic_cast<const PartitionAdjacent*>(c.get()) != nullptr) ++adjacency;
  }
  EXPECT_EQ(adjacency, 3);
}

TEST(AddContiguityTest, SkipStrategiesUnchanged) {
  World world = MakeWorld();
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10);
  EXPECT_EQ(AddContiguityConditions(p, 0.001).conditions().size(),
            p.conditions().size());
}

TEST(AddContiguityTest, SkipsNegatedSlots) {
  World world = MakeWorld();
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0,
                  SelectionStrategy::kStrictContiguity);
  SimplePattern rewritten = AddContiguityConditions(p, 0.001);
  // One adjacency condition between the two positive slots (0 and 2).
  int adjacency = 0;
  for (const ConditionPtr& c : rewritten.conditions()) {
    if (dynamic_cast<const SerialAdjacent*>(c.get()) != nullptr) {
      EXPECT_EQ(c->left(), 0);
      EXPECT_EQ(c->right(), 2);
      ++adjacency;
    }
  }
  EXPECT_EQ(adjacency, 1);
}

TEST(RewriteForPlanningTest, ComposesBothRewrites) {
  World world = MakeWorld();
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10)
          .WithStrategy(SelectionStrategy::kStrictContiguity);
  SimplePattern rewritten = RewriteForPlanning(p, 0.001);
  EXPECT_EQ(rewritten.op(), OperatorKind::kAnd);
  EXPECT_EQ(CountTsOrders(rewritten), 3);
}

}  // namespace
}  // namespace cepjoin
