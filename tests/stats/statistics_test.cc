#include "stats/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(PatternStatsTest, DefaultsToUnitSelectivity) {
  PatternStats stats(3);
  EXPECT_EQ(stats.size(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(stats.rate(i), 0.0);
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(stats.sel(i, j), 1.0);
  }
}

TEST(PatternStatsTest, SetSelIsSymmetric) {
  PatternStats stats(3);
  stats.set_sel(0, 2, 0.25);
  EXPECT_DOUBLE_EQ(stats.sel(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(stats.sel(2, 0), 0.25);
}

TEST(PatternStatsTest, DescribeContainsRates) {
  PatternStats stats(2);
  stats.set_rate(0, 3.5);
  EXPECT_NE(stats.Describe().find("3.5"), std::string::npos);
}

TEST(KleeneEffectiveRateTest, MatchesPaperFormulaForSmallExponents) {
  // Paper example (Sec. 5.2): r_B = 5, W = 10  =>  r' = 2^50 / 10.
  // With a clamp of 50 the formula is exact.
  double r = KleeneEffectiveRate(5.0, 10.0, /*max_exponent=*/50.0);
  EXPECT_DOUBLE_EQ(r, std::exp2(50.0) / 10.0);
}

TEST(KleeneEffectiveRateTest, SmallRatesAreExact) {
  // r·W = 4 < clamp: r' = 2^4 / 8 = 2.
  EXPECT_DOUBLE_EQ(KleeneEffectiveRate(0.5, 8.0), 2.0);
}

TEST(KleeneEffectiveRateTest, ClampKeepsRateFiniteAndDominant) {
  double r = KleeneEffectiveRate(45.0, 1200.0);  // r·W = 54000, clamped
  EXPECT_TRUE(std::isfinite(r));
  // Still enormously larger than any plain rate in the paper's range.
  EXPECT_GT(r, 1e5);
}

TEST(KleeneEffectiveRateTest, MonotoneInRate) {
  double lo = KleeneEffectiveRate(1.0, 4.0);
  double hi = KleeneEffectiveRate(2.0, 4.0);
  EXPECT_LT(lo, hi);
}

}  // namespace
}  // namespace cepjoin
