#include "stats/online_estimator.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::World;

TEST(OnlineStatsEstimatorTest, ConvergesToSteadyRate) {
  World world = MakeWorld(1);
  OnlineStatsEstimator estimator(1, /*half_life=*/5.0);
  // 2 events/second for 60 seconds.
  for (int i = 0; i < 120; ++i) {
    estimator.Observe(Ev(world.types[0], i * 0.5));
  }
  EXPECT_NEAR(estimator.Rate(0), 2.0, 0.3);
}

TEST(OnlineStatsEstimatorTest, TracksRateChange) {
  World world = MakeWorld(1);
  OnlineStatsEstimator estimator(1, /*half_life=*/2.0);
  // 1 ev/s for 20 s, then 10 ev/s for 20 s.
  double ts = 0.0;
  for (int i = 0; i < 20; ++i) estimator.Observe(Ev(0, ts += 1.0));
  double slow = estimator.Rate(0);
  for (int i = 0; i < 200; ++i) estimator.Observe(Ev(0, ts += 0.1));
  double fast = estimator.Rate(0);
  EXPECT_NEAR(slow, 1.0, 0.5);
  EXPECT_GT(fast, 5.0 * slow);
}

TEST(OnlineStatsEstimatorTest, DecaysIdleTypes) {
  World world = MakeWorld(2);
  OnlineStatsEstimator estimator(2, /*half_life=*/1.0);
  for (int i = 0; i < 10; ++i) estimator.Observe(Ev(0, i * 0.1));
  double before = estimator.Rate(0);
  // Type 1 keeps arriving for 20 s; type 0 goes silent.
  for (int i = 0; i < 200; ++i) estimator.Observe(Ev(1, 1.0 + i * 0.1));
  EXPECT_LT(estimator.Rate(0), 0.05 * before);
}

TEST(OnlineStatsEstimatorTest, EstimateForPatternUsesDeclaredTsSelectivity) {
  World world = MakeWorld(2);
  OnlineStatsEstimator estimator(2, 5.0);
  for (int i = 0; i < 100; ++i) {
    estimator.Observe(Ev(world.types[i % 2], i * 0.1, i));
  }
  SimplePattern seq = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 4);
  PatternStats stats = estimator.EstimateForPattern(seq);
  ASSERT_EQ(stats.size(), 2);
  EXPECT_DOUBLE_EQ(stats.sel(0, 1), 0.5);
  EXPECT_GT(stats.rate(0), 0.0);
}

TEST(OnlineStatsEstimatorTest, SamplesAttrSelectivityFromReservoir) {
  World world = MakeWorld(2);
  OnlineStatsEstimator estimator(2, 5.0);
  // v of type0 = 0; v of type1 alternates sign: selectivity of "<" ≈ 0.5.
  for (int i = 0; i < 200; ++i) {
    estimator.Observe(Ev(world.types[0], i * 0.1, 0.0));
    estimator.Observe(Ev(world.types[1], i * 0.1 + 0.05, i % 2 ? 1.0 : -1.0));
  }
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 0)};
  SimplePattern p(OperatorKind::kAnd, events, conditions, 4.0);
  PatternStats stats = estimator.EstimateForPattern(p);
  EXPECT_NEAR(stats.sel(0, 1), 0.5, 0.1);
}

}  // namespace
}  // namespace cepjoin
