#include "stats/collector.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "workload/stock_generator.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::World;

TEST(StatsCollectorTest, MeasuresRatesFromStream) {
  World world = MakeWorld(2);
  EventStream stream;
  // 10 seconds: type 0 every second (11 events), type 1 every 2 s.
  for (int t = 0; t <= 10; ++t) {
    stream.Append(Ev(world.types[0], t));
    if (t % 2 == 0) stream.Append(Ev(world.types[1], t));
  }
  StatsCollector collector(stream, 2);
  EXPECT_NEAR(collector.TypeRate(0), 1.1, 0.01);
  EXPECT_NEAR(collector.TypeRate(1), 0.6, 0.01);
  EXPECT_NEAR(collector.total_rate(), 1.7, 0.02);
}

TEST(StatsCollectorTest, DeclaredSelectivityWins) {
  World world = MakeWorld(2);
  EventStream stream = testing_util::StreamOf({Ev(0, 0.0), Ev(1, 1.0)});
  StatsCollector collector(stream, 2);
  TsOrder cond(0, 1);
  EXPECT_DOUBLE_EQ(collector.ConditionSelectivity(cond, 0, 1), 0.5);
}

TEST(StatsCollectorTest, MeasuresAttrCompareSelectivity) {
  World world = MakeWorld(2);
  EventStream stream;
  // Type 0 values all 0; type 1 values: 25% above zero.
  for (int i = 0; i < 100; ++i) {
    stream.Append(Ev(world.types[0], i * 0.01, 0.0));
    stream.Append(Ev(world.types[1], i * 0.01 + 0.005, i < 25 ? 1.0 : -1.0));
  }
  StatsCollector collector(stream, 2);
  AttrCompare cond(0, 0, CmpOp::kLt, 1, 0);  // 0 < v_b, true for 25%
  EXPECT_NEAR(collector.ConditionSelectivity(cond, 0, 1), 0.25, 0.02);
}

TEST(StatsCollectorTest, UnarySelectivityMeasured) {
  World world = MakeWorld(1);
  EventStream stream;
  for (int i = 0; i < 100; ++i) {
    stream.Append(Ev(world.types[0], i * 0.1, i < 10 ? 5.0 : 0.0));
  }
  StatsCollector collector(stream, 1);
  AttrThreshold cond(0, 0, CmpOp::kGt, 1.0);
  EXPECT_NEAR(collector.ConditionSelectivity(cond, 0, 0), 0.10, 0.01);
}

TEST(StatsCollectorTest, CollectForSequencePatternIncludesTsOrders) {
  World world = MakeWorld(3);
  EventStream stream;
  for (int i = 0; i < 60; ++i) {
    stream.Append(Ev(world.types[i % 3], i * 0.1, i));
  }
  StatsCollector collector(stream, 3);
  SimplePattern seq = testing_util::PurePattern(world, OperatorKind::kSeq, 3, 5);
  PatternStats stats = collector.CollectForPattern(seq);
  ASSERT_EQ(stats.size(), 3);
  // TsOrder between each positive pair: declared 0.5.
  EXPECT_DOUBLE_EQ(stats.sel(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(stats.sel(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(stats.sel(1, 2), 0.5);
  EXPECT_GT(stats.rate(0), 0.0);
}

TEST(StatsCollectorTest, NegatedSlotExcludedFromPlanStats) {
  World world = MakeWorld(3);
  EventStream stream;
  for (int i = 0; i < 30; ++i) stream.Append(Ev(world.types[i % 3], i * 0.1));
  StatsCollector collector(stream, 3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 5.0);
  PatternStats stats = collector.CollectForPattern(p);
  EXPECT_EQ(stats.size(), 2);  // only positive slots
}

TEST(StatsCollectorTest, KleeneTransformAppliedToKleeneSlot) {
  World world = MakeWorld(2);
  EventStream stream;
  for (int i = 0; i < 40; ++i) stream.Append(Ev(world.types[i % 2], i * 0.5));
  StatsCollector collector(stream, 2);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 4.0);
  PatternStats stats = collector.CollectForPattern(p);
  // Theorem 4: the Kleene slot's plan-time rate is 2^{r·W} / W of the
  // measured rate; the plain slot keeps its measured rate.
  double measured = collector.TypeRate(world.types[1]);
  EXPECT_NEAR(stats.rate(1), KleeneEffectiveRate(measured, 4.0),
              stats.rate(1) * 1e-9);
  EXPECT_GT(stats.rate(1), stats.rate(0));
}

TEST(StatsCollectorTest, StrictAdjacencySelectivityFormula) {
  StockGeneratorConfig config;
  config.num_symbols = 4;
  config.duration_seconds = 20.0;
  StockUniverse universe = GenerateStockStream(config);
  StatsCollector collector(universe.stream, universe.registry.size());
  double sel = collector.StrictAdjacencySelectivity(2.0);
  EXPECT_NEAR(sel, 1.0 / (2.0 * collector.total_rate()), 1e-9);
}

}  // namespace
}  // namespace cepjoin
