// Kleene closure semantics (Sec. 5.2 / Theorem 4): KL(B) binds every
// non-empty subset of qualifying B events, enumerated exactly once.

#include <gtest/gtest.h>

#include "nfa/nfa_engine.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

std::vector<Match> RunEngine(const SimplePattern& pattern, const OrderPlan& plan,
                       const EventStream& stream) {
  CollectingSink sink;
  NfaEngine engine(pattern, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.matches;
}

std::vector<std::string> Fingerprints(const std::vector<Match>& matches) {
  std::vector<std::string> out;
  for (const Match& m : matches) out.push_back(m.Fingerprint());
  std::sort(out.begin(), out.end());
  return out;
}

// SEQ(A, KL(B), C): types 0, 1, 2.
SimplePattern KleenePattern(const World& world, double window = 10.0) {
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true},
                                   {world.types[2], "c", false, false}};
  return SimplePattern(OperatorKind::kSeq, events, {}, window);
}

TEST(NfaKleeneTest, EnumeratesAllNonEmptySubsets) {
  World world = MakeWorld(3);
  SimplePattern p = KleenePattern(world);
  // a, b1, b2, b3, c: subsets of {b1,b2,b3}: 2^3 - 1 = 7 matches.
  EventStream stream = StreamOf(
      {Ev(0, 1), Ev(1, 2), Ev(1, 3), Ev(1, 4), Ev(2, 5)});
  std::vector<Match> matches = RunEngine(p, OrderPlan::Identity(3), stream);
  EXPECT_EQ(matches.size(), 7u);
  // All fingerprints distinct (exactly-once enumeration).
  std::vector<std::string> fps = Fingerprints(matches);
  EXPECT_EQ(std::unique(fps.begin(), fps.end()), fps.end());
}

TEST(NfaKleeneTest, SubsetsRespectSeqPosition) {
  World world = MakeWorld(3);
  SimplePattern p = KleenePattern(world);
  // B events outside (a.ts, c.ts) cannot join the set.
  EventStream stream = StreamOf(
      {Ev(1, 0.5), Ev(0, 1), Ev(1, 2), Ev(2, 3), Ev(1, 4)});
  std::vector<Match> matches = RunEngine(p, OrderPlan::Identity(3), stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[1].size(), 1u);
  EXPECT_EQ(matches[0].slots[1][0]->serial, 2u);
}

TEST(NfaKleeneTest, MultipleAnchorscombineWithOuterEvents) {
  World world = MakeWorld(3);
  SimplePattern p = KleenePattern(world);
  // a, b1, b2, c: subsets {b1},{b2},{b1,b2} => 3 matches per (a, c) pair.
  EventStream stream = StreamOf(
      {Ev(0, 1), Ev(1, 2), Ev(1, 3), Ev(2, 4), Ev(2, 5)});
  // Two c's: 3 subsets × 2 = 6.
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(3), stream).size(), 6u);
}

TEST(NfaKleeneTest, PlanInvarianceWithKleene) {
  World world = MakeWorld(3);
  SimplePattern p = KleenePattern(world, 5.0);
  Rng rng(7);
  EventStream stream;
  double ts = 0.0;
  for (int i = 0; i < 60; ++i) {
    ts += rng.UniformReal(0.05, 0.4);
    stream.Append(Ev(world.types[rng.UniformInt(0, 2)], ts));
  }
  std::vector<std::string> reference =
      Fingerprints(RunEngine(p, OrderPlan::Identity(3), stream));
  EXPECT_FALSE(reference.empty());
  std::vector<int> perm = {0, 1, 2};
  while (std::next_permutation(perm.begin(), perm.end())) {
    EXPECT_EQ(Fingerprints(RunEngine(p, OrderPlan(perm), stream)), reference)
        << OrderPlan(perm).Describe();
  }
}

TEST(NfaKleeneTest, KleeneLastSlotStillAccumulates) {
  World world = MakeWorld(2);
  // SEQ(A, KL(B)): every non-empty subset of B's after an A.
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2), Ev(1, 3)});
  // Subsets: {b1}, {b2}, {b1,b2} = 3.
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 3u);
}

TEST(NfaKleeneTest, KleeneFirstSlotSubsetsPrecedeOthers) {
  World world = MakeWorld(2);
  // SEQ(KL(B), A).
  std::vector<EventSpec> events = {{world.types[1], "b", false, true},
                                   {world.types[0], "a", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  EventStream stream = StreamOf({Ev(1, 1), Ev(1, 2), Ev(0, 3)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 3u);
}

TEST(NfaKleeneTest, UnaryFilterAppliesToEveryMember) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true},
                                   {world.types[2], "c", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrThreshold>(1, 0, CmpOp::kGt, 0.0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 10.0);
  // Only one of three B's passes the filter.
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2, -1.0), Ev(1, 3, 1.0),
                                 Ev(1, 4, -2.0), Ev(2, 5)});
  std::vector<Match> matches = RunEngine(p, OrderPlan::Identity(3), stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[1].size(), 1u);
}

TEST(NfaKleeneTest, PairwiseConditionAppliesToEveryMember) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true},
                                   {world.types[2], "c", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 10.0);
  // a.v = 0; b1.v = 1 (ok), b2.v = -1 (fails): only subsets over {b1}.
  EventStream stream = StreamOf({Ev(0, 1, 0.0), Ev(1, 2, 1.0),
                                 Ev(1, 3, -1.0), Ev(2, 4)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(3), stream).size(), 1u);
}

TEST(NfaKleeneTest, WindowPrunesSubsetGrowth) {
  World world = MakeWorld(3);
  SimplePattern p = KleenePattern(world, /*window=*/2.0);
  // b at 0.5 is within (a, c) but 2.6 away from c at 3.1: excluded.
  EventStream stream = StreamOf({Ev(0, 0.2), Ev(1, 0.5), Ev(1, 2.0),
                                 Ev(2, 2.1)});
  std::vector<Match> matches = RunEngine(p, OrderPlan::Identity(3), stream);
  // Match (a, {b2}, c) only: {b1,...} would span 0.5..2.1 (ok, 1.6)...
  // a at 0.2 to c at 2.1 spans 1.9 <= 2: both b's individually fit, so
  // subsets {b1}, {b2}, {b1,b2}: 3 matches.
  EXPECT_EQ(matches.size(), 3u);
}

}  // namespace
}  // namespace cepjoin
