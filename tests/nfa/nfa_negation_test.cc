// Negation semantics (Sec. 5.3): internal, leading, and trailing negated
// events in SEQ patterns, plus window-scoped negation in AND patterns.

#include <gtest/gtest.h>

#include "nfa/nfa_engine.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

std::vector<std::string> RunEngine(const SimplePattern& pattern,
                             const OrderPlan& plan, const EventStream& stream) {
  CollectingSink sink;
  NfaEngine engine(pattern, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.Fingerprints();
}

// SEQ(A, NOT(B), C): types 0, 1, 2.
SimplePattern InternalNegation(const World& world, double window = 10.0) {
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  return SimplePattern(OperatorKind::kSeq, events, {}, window);
}

TEST(NfaNegationTest, InternalNegationKillsMatch) {
  World world = MakeWorld(3);
  SimplePattern p = InternalNegation(world);
  // a, b, c: the B between kills the (a, c) match.
  EXPECT_TRUE(
      RunEngine(p, OrderPlan::Identity(2), StreamOf({Ev(0, 1), Ev(1, 2), Ev(2, 3)}))
          .empty());
}

TEST(NfaNegationTest, InternalNegationAllowsCleanMatch) {
  World world = MakeWorld(3);
  SimplePattern p = InternalNegation(world);
  EXPECT_EQ(
      RunEngine(p, OrderPlan::Identity(2), StreamOf({Ev(0, 1), Ev(2, 3)})).size(),
      1u);
}

TEST(NfaNegationTest, NegatedEventOutsideGuardIntervalIsHarmless) {
  World world = MakeWorld(3);
  SimplePattern p = InternalNegation(world);
  // B before A and B after C do not kill.
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2),
                StreamOf({Ev(1, 0.5), Ev(0, 1), Ev(2, 3), Ev(1, 4)}))
                .size(),
            1u);
}

TEST(NfaNegationTest, PartialKillsOnlyAffectedCombinations) {
  World world = MakeWorld(3);
  SimplePattern p = InternalNegation(world);
  // a1(1), a2(4), b(3), c(5): pair (a1, c) killed by b in (1,5);
  // pair (a2, c) survives because b at 3 precedes a2 at 4.
  std::vector<std::string> matches = RunEngine(
      p, OrderPlan::Identity(2),
      StreamOf({Ev(0, 1), Ev(1, 3), Ev(0, 4), Ev(2, 5)}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], "0:2,;1:;2:3,;");  // a2 (serial 2) with c (serial 3)
}

TEST(NfaNegationTest, NegationConditionsRestrictKillers) {
  World world = MakeWorld(3);
  // Only B with b.v == a.v kills.
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kEq, 1, 0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 10.0);
  // b.v = 7 != a.v = 5: survives. Second b.v = 5: kills.
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2),
                StreamOf({Ev(0, 1, 5), Ev(1, 2, 7), Ev(2, 3)}))
                .size(),
            1u);
  EXPECT_TRUE(RunEngine(p, OrderPlan::Identity(2),
                  StreamOf({Ev(0, 1, 5), Ev(1, 2, 5), Ev(2, 3)}))
                  .empty());
}

TEST(NfaNegationTest, InternalNegationInvariantUnderPlans) {
  World world = MakeWorld(3);
  SimplePattern p = InternalNegation(world);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 1.5), Ev(0, 2), Ev(2, 3),
                                 Ev(1, 3.5), Ev(2, 4), Ev(0, 5), Ev(2, 6)});
  std::vector<std::string> reference = RunEngine(p, OrderPlan::Identity(2), stream);
  EXPECT_EQ(RunEngine(p, OrderPlan({1, 0}), stream), reference);
}

TEST(NfaNegationTest, LeadingNegationKillsOnEarlierB) {
  World world = MakeWorld(3);
  // SEQ(NOT(B), A, C): no B before A within the match window.
  std::vector<EventSpec> events = {{world.types[1], "b", true, false},
                                   {world.types[0], "a", false, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  EXPECT_TRUE(
      RunEngine(p, OrderPlan::Identity(2), StreamOf({Ev(1, 0.5), Ev(0, 1), Ev(2, 2)}))
          .empty());
}

TEST(NfaNegationTest, LeadingNegationIgnoresLaterB) {
  World world = MakeWorld(3);
  // The negated slot precedes A, so a B after A does not kill.
  std::vector<EventSpec> events = {{world.types[1], "b", true, false},
                                   {world.types[0], "a", false, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  EXPECT_EQ(
      RunEngine(p, OrderPlan::Identity(2), StreamOf({Ev(0, 1), Ev(1, 1.5), Ev(2, 2)}))
          .size(),
      1u);
}

TEST(NfaNegationTest, LeadingNegationOnlyPastWindowEdge) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[1], "b", true, false},
                                   {world.types[0], "a", false, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, /*window=*/2.0);
  // B at 0.1 is more than W before c at 2.5 (max_ts 2.5, edge 0.5): the
  // killer is outside the match window, so the match survives.
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2),
                StreamOf({Ev(1, 0.1), Ev(0, 1.0), Ev(2, 2.5)}))
                .size(),
            1u);
}

TEST(NfaNegationTest, TrailingNegationDefersEmission) {
  World world = MakeWorld(3);
  // SEQ(A, C, NOT(B)) with window 2.
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[2], "c", false, false},
                                   {world.types[1], "b", true, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 2.0);
  {
    // B arrives after C within the window: match killed.
    CollectingSink sink;
    NfaEngine engine(p, OrderPlan::Identity(2), &sink);
    EventStream stream = StreamOf({Ev(0, 1), Ev(2, 2), Ev(1, 2.5)});
    for (const EventPtr& e : stream.events()) {
      engine.OnEvent(e);
    }
    engine.Finish();
    EXPECT_TRUE(sink.matches.empty());
  }
  {
    // B arrives past the window edge (a.ts + W = 3): match emitted when
    // the window closes.
    CollectingSink sink;
    NfaEngine engine(p, OrderPlan::Identity(2), &sink);
    EventStream stream = StreamOf({Ev(0, 1), Ev(2, 2), Ev(1, 3.5)});
    for (const EventPtr& e : stream.events()) {
      engine.OnEvent(e);
    }
    engine.Finish();
    EXPECT_EQ(sink.matches.size(), 1u);
  }
  {
    // No further events: Finish() flushes the pending match.
    CollectingSink sink;
    NfaEngine engine(p, OrderPlan::Identity(2), &sink);
    EventStream stream = StreamOf({Ev(0, 1), Ev(2, 2)});
    for (const EventPtr& e : stream.events()) {
      engine.OnEvent(e);
    }
    EXPECT_TRUE(sink.matches.empty());  // still pending
    engine.Finish();
    EXPECT_EQ(sink.matches.size(), 1u);
  }
}

TEST(NfaNegationTest, AndNegationScopesToWholeWindow) {
  World world = MakeWorld(3);
  // AND(A, NOT(B), C) window 2: no B may co-occur with the match.
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false}};
  SimplePattern p(OperatorKind::kAnd, events, {}, 2.0);
  // B anywhere within the co-window kills (even before A).
  EXPECT_TRUE(RunEngine(p, OrderPlan::Identity(2),
                  StreamOf({Ev(1, 0.8), Ev(0, 1), Ev(2, 1.5)}))
                  .empty());
  // B far in the past does not.
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan::Identity(2), &sink);
  EventStream stream =
      StreamOf({Ev(1, 0.1), Ev(0, 3.0), Ev(2, 3.5), Ev(0, 7.0)});
  for (const EventPtr& e : stream.events()) {
    engine.OnEvent(e);
  }
  engine.Finish();
  EXPECT_EQ(sink.matches.size(), 1u);
}

}  // namespace
}  // namespace cepjoin
