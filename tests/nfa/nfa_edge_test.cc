// Edge cases for the NFA engine: timestamp ties, repeated types with
// conditions, multiple negations, Kleene inside AND, idempotent Finish,
// and counter-merge semantics.

#include <gtest/gtest.h>

#include "nfa/nfa_engine.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

std::vector<Match> RunEngine(const SimplePattern& pattern,
                             const OrderPlan& plan,
                             const EventStream& stream) {
  CollectingSink sink;
  NfaEngine engine(pattern, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.matches;
}

TEST(NfaEdgeTest, TimestampTiesDoNotSatisfySeq) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  // a and b share ts: strict order a.ts < b.ts fails.
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(1, 1.0)});
  EXPECT_TRUE(RunEngine(p, OrderPlan::Identity(2), stream).empty());
}

TEST(NfaEdgeTest, TimestampTiesSatisfyAnd) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kAnd, 2, 10);
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(1, 1.0)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 1u);
}

TEST(NfaEdgeTest, EmptyStreamProducesNothing) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan::Identity(2), &sink);
  engine.Finish();
  EXPECT_TRUE(sink.matches.empty());
  EXPECT_EQ(engine.counters().events_processed, 0u);
}

TEST(NfaEdgeTest, IrrelevantTypesAreIgnoredCheaply) {
  World world = MakeWorld(3);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan::Identity(2), &sink);
  EventStream stream = StreamOf({Ev(2, 1.0), Ev(0, 2.0), Ev(2, 3.0),
                                 Ev(1, 4.0), Ev(2, 5.0)});
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  EXPECT_EQ(sink.matches.size(), 1u);
  // Type-2 events are never buffered: they appear nowhere in the pattern.
  EXPECT_EQ(engine.counters().peak_buffered_events, 2u);
}

TEST(NfaEdgeTest, SameTypeSlotsWithValueCondition) {
  World world = MakeWorld(1);
  // SEQ(A a1, A a2) WHERE a1.v < a2.v.
  std::vector<EventSpec> events = {{world.types[0], "a1", false, false},
                                   {world.types[0], "a2", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 10.0);
  // Values: 3, 1, 2 — rising pairs in ts order: (3,?)no, (1,2) only.
  EventStream stream =
      StreamOf({Ev(0, 1.0, 3.0), Ev(0, 2.0, 1.0), Ev(0, 3.0, 2.0)});
  std::vector<Match> matches = RunEngine(p, OrderPlan::Identity(2), stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[0][0]->serial, 1u);
  EXPECT_EQ(matches[0].slots[1][0]->serial, 2u);
}

TEST(NfaEdgeTest, TwoNegatedSlots) {
  World world = MakeWorld(4);
  // SEQ(A, NOT(B), C, NOT(D), ...) with only A, C positive:
  // SEQ(A, NOT B, C) plus trailing NOT(D).
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", true, false},
                                   {world.types[2], "c", false, false},
                                   {world.types[3], "d", true, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 2.0);
  {
    // Clean: no B between, no D after within window.
    CollectingSink sink;
    NfaEngine engine(p, OrderPlan::Identity(2), &sink);
    EventStream stream = StreamOf({Ev(0, 1), Ev(2, 2)});
    for (const EventPtr& e : stream.events()) engine.OnEvent(e);
    engine.Finish();
    EXPECT_EQ(sink.matches.size(), 1u);
  }
  {
    // B between kills even though D is absent.
    CollectingSink sink;
    NfaEngine engine(p, OrderPlan::Identity(2), &sink);
    EventStream stream = StreamOf({Ev(0, 1), Ev(1, 1.5), Ev(2, 2)});
    for (const EventPtr& e : stream.events()) engine.OnEvent(e);
    engine.Finish();
    EXPECT_TRUE(sink.matches.empty());
  }
  {
    // D after C within the window kills the pending match.
    CollectingSink sink;
    NfaEngine engine(p, OrderPlan::Identity(2), &sink);
    EventStream stream = StreamOf({Ev(0, 1), Ev(2, 2), Ev(3, 2.5)});
    for (const EventPtr& e : stream.events()) engine.OnEvent(e);
    engine.Finish();
    EXPECT_TRUE(sink.matches.empty());
  }
}

TEST(NfaEdgeTest, KleeneInsideAndPattern) {
  World world = MakeWorld(2);
  // AND(A, KL(B)): subsets of B co-windowed with an A, no order.
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, true}};
  SimplePattern p(OperatorKind::kAnd, events, {}, 10.0);
  // b1 before a, b2 after: subsets {b1}, {b2}, {b1,b2} -> 3 matches.
  EventStream stream = StreamOf({Ev(1, 1), Ev(0, 2), Ev(1, 3)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 3u);
}

TEST(NfaEdgeTest, FinishIsIdempotent) {
  World world = MakeWorld(3);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[2], "c", false, false},
                                   {world.types[1], "b", true, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 2.0);
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan::Identity(2), &sink);
  EventStream stream = StreamOf({Ev(0, 1), Ev(2, 2)});
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  size_t after_first = sink.matches.size();
  engine.Finish();
  EXPECT_EQ(sink.matches.size(), after_first);
  EXPECT_EQ(after_first, 1u);
}

TEST(NfaEdgeTest, WindowPruningNeverDropsReachableMatches) {
  // Events arriving exactly W apart are still matchable.
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 1.0);
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan::Identity(2), &sink);
  EventStream stream;
  // 200 sweeps worth of events with periodic boundary pairs.
  for (int i = 0; i < 300; ++i) {
    stream.Append(Ev(0, i * 1.0));
    stream.Append(Ev(1, i * 1.0 + 1.0));
  }
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  // Each a at t=i matches b at t=i+1 (exactly W) and nothing else...
  // except b at t=i (tie fails) — so exactly one b per a.
  EXPECT_EQ(sink.matches.size(), 300u);
}

TEST(EngineCountersTest, MergeAggregates) {
  EngineCounters a;
  a.events_processed = 10;
  a.matches_emitted = 2;
  a.live_instances = 3;
  a.peak_live_instances = 5;
  EngineCounters b;
  b.events_processed = 10;
  b.matches_emitted = 1;
  b.live_instances = 4;
  b.peak_live_instances = 6;
  a.Merge(b);
  EXPECT_EQ(a.events_processed, 10u);  // same stream, not summed
  EXPECT_EQ(a.matches_emitted, 3u);
  EXPECT_EQ(a.live_instances, 7u);
  EXPECT_EQ(a.peak_live_instances, 11u);
}

}  // namespace
}  // namespace cepjoin
