// Event selection strategies (Sec. 6.2): skip-till-any vs skip-till-next
// vs strict / partition contiguity.

#include <gtest/gtest.h>

#include "nfa/nfa_engine.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

std::vector<Match> RunEngine(const SimplePattern& pattern, const OrderPlan& plan,
                       const EventStream& stream) {
  CollectingSink sink;
  NfaEngine engine(pattern, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.matches;
}

TEST(NfaStrategyTest, SkipTillNextDoesNotBranch) {
  World world = MakeWorld(2);
  SimplePattern any = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  SimplePattern next = any.WithStrategy(SelectionStrategy::kSkipTillNext);
  EventStream stream =
      StreamOf({Ev(0, 1), Ev(1, 2), Ev(1, 3), Ev(1, 4)});
  // Any-match: a pairs with each b: 3 matches.
  EXPECT_EQ(RunEngine(any, OrderPlan::Identity(2), stream).size(), 3u);
  // Next-match: a consumes only the first b.
  std::vector<Match> matches = RunEngine(next, OrderPlan::Identity(2), stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[1][0]->serial, 1u);
}

TEST(NfaStrategyTest, SkipTillNextStillSkipsNonMatching) {
  World world = MakeWorld(3);
  // Irrelevant C events between A and B must be skipped (contrast with
  // contiguity below).
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10)
          .WithStrategy(SelectionStrategy::kSkipTillNext);
  EventStream stream = StreamOf({Ev(0, 1), Ev(2, 2), Ev(1, 3)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 1u);
}

TEST(NfaStrategyTest, SkipTillNextBoundsPartialMatchGrowth) {
  World world = MakeWorld(2);
  SimplePattern any = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 50);
  SimplePattern next = any.WithStrategy(SelectionStrategy::kSkipTillNext);
  EventStream stream;
  for (int i = 0; i < 100; ++i) stream.Append(Ev(0, i * 0.1));
  for (int i = 0; i < 100; ++i) stream.Append(Ev(1, 10 + i * 0.1));
  size_t any_matches = RunEngine(any, OrderPlan::Identity(2), stream).size();
  size_t next_matches = RunEngine(next, OrderPlan::Identity(2), stream).size();
  EXPECT_EQ(any_matches, 100u * 100u);
  EXPECT_EQ(next_matches, 100u);
}

TEST(NfaStrategyTest, StrictContiguityRequiresAdjacentSerials) {
  World world = MakeWorld(3);
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10)
          .WithStrategy(SelectionStrategy::kStrictContiguity);
  // a(0) b(1): adjacent serials -> match. Then a(2) X(3) b(4): gap.
  EventStream stream =
      StreamOf({Ev(0, 1), Ev(1, 2), Ev(0, 3), Ev(2, 4), Ev(1, 5)});
  std::vector<Match> matches = RunEngine(p, OrderPlan::Identity(2), stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].slots[0][0]->serial, 0u);
  EXPECT_EQ(matches[0].slots[1][0]->serial, 1u);
}

TEST(NfaStrategyTest, StrictContiguityThreeSlots) {
  World world = MakeWorld(3);
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10)
          .WithStrategy(SelectionStrategy::kStrictContiguity);
  EventStream stream = StreamOf({Ev(0, 1), Ev(1, 2), Ev(2, 3),   // contiguous
                                 Ev(0, 4), Ev(1, 5), Ev(0, 6), Ev(2, 7)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(3), stream).size(), 1u);
}

TEST(NfaStrategyTest, StrictContiguityInvariantUnderPlans) {
  World world = MakeWorld(3);
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10)
          .WithStrategy(SelectionStrategy::kStrictContiguity);
  Rng rng(17);
  EventStream stream;
  double ts = 0;
  for (int i = 0; i < 90; ++i) {
    ts += 0.05;
    stream.Append(Ev(world.types[rng.UniformInt(0, 2)], ts));
  }
  auto fingerprints = [&](const OrderPlan& plan) {
    CollectingSink sink;
    NfaEngine engine(p, plan, &sink);
    for (const EventPtr& e : stream.events()) engine.OnEvent(e);
    engine.Finish();
    return sink.Fingerprints();
  };
  std::vector<std::string> reference = fingerprints(OrderPlan::Identity(3));
  std::vector<int> perm = {0, 1, 2};
  while (std::next_permutation(perm.begin(), perm.end())) {
    EXPECT_EQ(fingerprints(OrderPlan(perm)), reference);
  }
}

TEST(NfaStrategyTest, PartitionContiguityConstrainsWithinPartition) {
  World world = MakeWorld(2);
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10)
          .WithStrategy(SelectionStrategy::kPartitionContiguity);
  // Partition 1: a(pseq 0), b(pseq 1) adjacent -> match even though a
  // partition-2 event interleaves globally.
  EventStream stream = StreamOf({Ev(0, 1, 0, /*partition=*/1),
                                 Ev(0, 2, 0, /*partition=*/2),
                                 Ev(1, 3, 0, /*partition=*/1)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 2u);
  // Two matches: (a_p1, b_p1) via same-partition adjacency, and
  // (a_p2, b_p1) via the different-partition allowance.
}

TEST(NfaStrategyTest, PartitionContiguityBlocksGapsWithinPartition) {
  World world = MakeWorld(3);
  SimplePattern p =
      testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10)
          .WithStrategy(SelectionStrategy::kPartitionContiguity);
  // Same partition with an intervening event of another type: pseq gap.
  EventStream stream = StreamOf({Ev(0, 1, 0, 1), Ev(2, 2, 0, 1),
                                 Ev(1, 3, 0, 1)});
  EXPECT_TRUE(RunEngine(p, OrderPlan::Identity(2), stream).empty());
}

}  // namespace
}  // namespace cepjoin
