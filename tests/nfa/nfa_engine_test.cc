#include "nfa/nfa_engine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace cepjoin {
namespace {

using testing_util::Ev;
using testing_util::MakeWorld;
using testing_util::StreamOf;
using testing_util::World;

std::vector<std::string> RunEngine(const SimplePattern& pattern,
                             const OrderPlan& plan,
                             const EventStream& stream) {
  CollectingSink sink;
  NfaEngine engine(pattern, plan, &sink);
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  return sink.Fingerprints();
}

TEST(NfaEngineTest, DetectsSimpleSequence) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  EventStream stream = StreamOf(
      {Ev(0, 1.0), Ev(1, 2.0), Ev(0, 3.0), Ev(1, 4.0)});
  // (a1,b1), (a1,b2), (a2,b2).
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 3u);
}

TEST(NfaEngineTest, SequenceRespectsTemporalOrder) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  // B before A: no match.
  EventStream stream = StreamOf({Ev(1, 1.0), Ev(0, 2.0)});
  EXPECT_TRUE(RunEngine(p, OrderPlan::Identity(2), stream).empty());
}

TEST(NfaEngineTest, ConjunctionIgnoresArrivalOrder) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kAnd, 2, 10);
  EventStream stream = StreamOf({Ev(1, 1.0), Ev(0, 2.0)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 1u);
}

TEST(NfaEngineTest, WindowExcludesDistantPairs) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 5);
  EventStream stream = StreamOf({Ev(0, 0.0), Ev(1, 5.5), Ev(0, 6.0),
                                 Ev(1, 10.0)});
  // (a1,b1) spans 5.5 > 5: out. (a1,b2) 10: out. (a2,b2) 4: in.
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 1u);
}

TEST(NfaEngineTest, WindowBoundaryInclusive) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 5);
  EventStream stream = StreamOf({Ev(0, 0.0), Ev(1, 5.0)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 1u);
}

TEST(NfaEngineTest, ConditionsFilterMatches) {
  World world = MakeWorld(2);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, 1, 0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 10.0);
  EventStream stream = StreamOf({Ev(0, 1.0, 5.0), Ev(1, 2.0, 3.0),
                                 Ev(1, 3.0, 7.0)});
  // a.v=5: only b.v=7 qualifies.
  std::vector<std::string> matches = RunEngine(p, OrderPlan::Identity(2), stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], "0:0,;1:2,;");
}

TEST(NfaEngineTest, UnaryConditionsFilterAtBuffering) {
  World world = MakeWorld(2);
  std::vector<EventSpec> events = {{world.types[0], "a", false, false},
                                   {world.types[1], "b", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrThreshold>(0, 0, CmpOp::kGt, 0.0)};
  SimplePattern p(OperatorKind::kSeq, events, conditions, 10.0);
  EventStream stream = StreamOf({Ev(0, 1.0, -1.0), Ev(0, 2.0, 1.0),
                                 Ev(1, 3.0)});
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 1u);
}

TEST(NfaEngineTest, SameTypeSlotsNeverReuseOneEvent) {
  World world = MakeWorld(1);
  std::vector<EventSpec> events = {{world.types[0], "a1", false, false},
                                   {world.types[0], "a2", false, false}};
  SimplePattern p(OperatorKind::kSeq, events, {}, 10.0);
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(0, 2.0), Ev(0, 3.0)});
  // Ordered pairs of distinct events: (1,2), (1,3), (2,3).
  EXPECT_EQ(RunEngine(p, OrderPlan::Identity(2), stream).size(), 3u);
}

TEST(NfaEngineTest, OutOfOrderPlanBuffersAndBackfills) {
  // The four-cameras scenario: D rare, plan starts with D.
  World world = MakeWorld(4);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 4, 100);
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(1, 2.0), Ev(2, 3.0),
                                 Ev(0, 4.0), Ev(1, 5.0), Ev(2, 6.0),
                                 Ev(3, 7.0)});
  // 2 choices for A/B/C each with ts order... sequences:
  // a in {1,4}, b in {2,5}, c in {3,6} with a<b<c: (1,2,3),(1,2,6),(1,5,6),(4,5,6).
  std::vector<std::string> matches =
      RunEngine(p, OrderPlan({3, 2, 1, 0}), stream);
  EXPECT_EQ(matches.size(), 4u);
}

class PlanInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanInvarianceTest, AllOrdersProduceIdenticalMatches) {
  // Detection correctness must not depend on the evaluation order
  // (Sec. 2.2: "all (n!) NFAs will track the exact same pattern").
  int n = GetParam();
  World world = MakeWorld(n);
  Rng rng(500 + n);
  // Random stream of 120 events over the n types with random values.
  EventStream stream;
  double ts = 0.0;
  for (int i = 0; i < 120; ++i) {
    ts += rng.UniformReal(0.01, 0.3);
    stream.Append(Ev(world.types[rng.UniformInt(0, n - 1)], ts,
                     rng.UniformReal(-3, 3)));
  }
  for (OperatorKind op : {OperatorKind::kSeq, OperatorKind::kAnd}) {
    std::vector<ConditionPtr> conditions = {
        std::make_shared<AttrCompare>(0, 0, CmpOp::kLt, n - 1, 0)};
    std::vector<EventSpec> events;
    for (int i = 0; i < n; ++i) {
      events.push_back({world.types[i], "e" + std::to_string(i), false, false});
    }
    SimplePattern p(op, events, conditions, 3.0);
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::vector<std::string> reference =
        RunEngine(p, OrderPlan::Identity(n), stream);
    EXPECT_FALSE(reference.empty()) << "degenerate test setup";
    do {
      EXPECT_EQ(RunEngine(p, OrderPlan(perm), stream), reference)
          << OperatorName(op) << " order " << OrderPlan(perm).Describe();
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanInvarianceTest, ::testing::Values(2, 3, 4),
                         ::testing::PrintToStringParamName());

TEST(NfaEngineTest, CountersTrackInstancesAndBuffers) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 10);
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan::Identity(2), &sink);
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(1, 2.0)});
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  const EngineCounters& counters = engine.counters();
  EXPECT_EQ(counters.events_processed, 2u);
  EXPECT_EQ(counters.matches_emitted, 1u);
  EXPECT_GE(counters.instances_created, 1u);
  EXPECT_GE(counters.peak_buffered_events, 2u);
  EXPECT_GT(counters.peak_total_bytes, 0u);
}

TEST(NfaEngineTest, EvictionBoundsLiveState) {
  World world = MakeWorld(2);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 2, 1.0);
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan::Identity(2), &sink);
  // Long quiet stream of As only: instances must be swept.
  EventStream stream;
  for (int i = 0; i < 1000; ++i) stream.Append(Ev(0, i * 0.1));
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  // At window 1.0 and rate 10/s, ~10 As are live; sweeps are amortized,
  // so allow generous slack — but far fewer than 1000.
  EXPECT_LT(engine.counters().live_instances, 120u);
  EXPECT_LT(engine.counters().buffered_events, 120u);
}

TEST(NfaEngineTest, MatchMetadataIsConsistent) {
  World world = MakeWorld(3);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10);
  CollectingSink sink;
  NfaEngine engine(p, OrderPlan({2, 0, 1}), &sink);
  EventStream stream = StreamOf({Ev(0, 1.0), Ev(1, 2.0), Ev(2, 3.0)});
  for (const EventPtr& e : stream.events()) engine.OnEvent(e);
  engine.Finish();
  ASSERT_EQ(sink.matches.size(), 1u);
  const Match& match = sink.matches[0];
  EXPECT_DOUBLE_EQ(match.last_ts, 3.0);
  EXPECT_EQ(match.last_event_serial, 2u);
  EXPECT_EQ(match.emit_serial, 2u);
  EXPECT_EQ(match.LatencyEvents(), 0u);
  EXPECT_GE(match.latency_seconds, 0.0);
  ASSERT_EQ(match.slots.size(), 3u);
  for (const auto& slot : match.slots) EXPECT_EQ(slot.size(), 1u);
}

TEST(NfaEngineDeathTest, PlanMustCoverPositiveSlots) {
  World world = MakeWorld(3);
  SimplePattern p = testing_util::PurePattern(world, OperatorKind::kSeq, 3, 10);
  CollectingSink sink;
  EXPECT_DEATH(NfaEngine(p, OrderPlan::Identity(2), &sink), "positive slots");
}

}  // namespace
}  // namespace cepjoin
