#include "plan/tree_plan.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(TreePlanTest, LeftDeepFromOrder) {
  TreePlan tree = TreePlan::LeftDeep(OrderPlan({2, 0, 1}));
  EXPECT_EQ(tree.num_leaves(), 3);
  EXPECT_EQ(tree.Describe(), "((2 0) 1)");
  EXPECT_EQ(tree.internal_postorder().size(), 2u);
}

TEST(TreePlanTest, BuilderBushyTree) {
  TreePlan::Builder builder;
  int a = builder.AddLeaf(0);
  int b = builder.AddLeaf(1);
  int c = builder.AddLeaf(2);
  int d = builder.AddLeaf(3);
  int ab = builder.AddInternal(a, b);
  int cd = builder.AddInternal(c, d);
  int root = builder.AddInternal(ab, cd);
  TreePlan tree = builder.Build(root);
  EXPECT_EQ(tree.Describe(), "((0 1) (2 3))");
  EXPECT_EQ(tree.num_leaves(), 4);
  EXPECT_EQ(tree.node(root).mask, 0b1111u);
  EXPECT_EQ(tree.node(ab).mask, 0b0011u);
}

TEST(TreePlanTest, SiblingAndLeafOf) {
  TreePlan tree = TreePlan::LeftDeep(OrderPlan({0, 1, 2}));
  int leaf2 = tree.LeafOf(2);
  EXPECT_EQ(tree.node(leaf2).leaf_item, 2);
  int sib = tree.Sibling(leaf2);
  EXPECT_EQ(tree.node(sib).mask, 0b011u);  // subtree (0 1)
  EXPECT_EQ(tree.Sibling(tree.root()), -1);
}

TEST(TreePlanTest, InternalPostorderIsBottomUp) {
  TreePlan::Builder builder;
  int a = builder.AddLeaf(0);
  int b = builder.AddLeaf(1);
  int c = builder.AddLeaf(2);
  int ab = builder.AddInternal(a, b);
  int root = builder.AddInternal(ab, c);
  TreePlan tree = builder.Build(root);
  const std::vector<int>& order = tree.internal_postorder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], ab);
  EXPECT_EQ(order[1], root);
}

TEST(TreePlanTest, EqualityByShape) {
  TreePlan a = TreePlan::LeftDeep(OrderPlan({0, 1, 2}));
  TreePlan b = TreePlan::LeftDeep(OrderPlan({0, 1, 2}));
  TreePlan c = TreePlan::LeftDeep(OrderPlan({1, 0, 2}));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TreePlanDeathTest, RejectsInvalidTrees) {
  {
    TreePlan::Builder builder;
    int a = builder.AddLeaf(0);
    EXPECT_DEATH(builder.AddInternal(a, a), "");
  }
  {
    TreePlan::Builder builder;
    builder.AddLeaf(0);
    int b = builder.AddLeaf(2);  // leaves {0,2}: not a dense 0..n-1 cover
    int a2 = 0;
    int root = builder.AddInternal(a2, b);
    EXPECT_DEATH(builder.Build(root), "exactly once");
  }
  {
    TreePlan::Builder builder;
    int a = builder.AddLeaf(0);
    builder.AddLeaf(1);  // dangling leaf never attached
    EXPECT_DEATH(builder.Build(a), "");
  }
}

}  // namespace
}  // namespace cepjoin
