#include "plan/order_plan.h"

#include <gtest/gtest.h>

namespace cepjoin {
namespace {

TEST(OrderPlanTest, IdentityPlan) {
  OrderPlan plan = OrderPlan::Identity(4);
  EXPECT_EQ(plan.size(), 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(plan.At(k), k);
    EXPECT_EQ(plan.StepOf(k), k);
  }
}

TEST(OrderPlanTest, StepOfInvertsAt) {
  OrderPlan plan({2, 0, 3, 1});
  EXPECT_EQ(plan.At(0), 2);
  EXPECT_EQ(plan.StepOf(2), 0);
  EXPECT_EQ(plan.StepOf(1), 3);
}

TEST(OrderPlanTest, DescribeAndEquality) {
  OrderPlan a({1, 0});
  OrderPlan b({1, 0});
  OrderPlan c({0, 1});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.Describe(), "[1 0]");
}

TEST(OrderPlanDeathTest, RejectsBadPermutations) {
  EXPECT_DEATH(OrderPlan({0, 0}), "duplicate");
  EXPECT_DEATH(OrderPlan({0, 5}), "out of range");
}

}  // namespace
}  // namespace cepjoin
