#include "optimizer/tree_optimizers.h"

#include <gtest/gtest.h>

#include "optimizer/dp_bushy.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

TEST(BestTreeForLeafOrderTest, TwoLeavesSingleJoin) {
  Rng rng(1);
  CostFunction cost(testing_util::RandomStats(2, rng), 2.0);
  TreePlan tree = BestTreeForLeafOrder(cost, OrderPlan::Identity(2));
  EXPECT_EQ(tree.Describe(), "(0 1)");
}

TEST(BestTreeForLeafOrderTest, PrefersSelectiveAdjacentJoin) {
  // sel(1,2) tiny: the optimal topology over leaf order (0,1,2) joins
  // leaves 1,2 first: (0 (1 2)).
  PatternStats stats(3);
  for (int i = 0; i < 3; ++i) stats.set_rate(i, 10.0);
  stats.set_sel(1, 2, 0.001);
  CostFunction cost(stats, 2.0);
  TreePlan tree = BestTreeForLeafOrder(cost, OrderPlan::Identity(3));
  EXPECT_EQ(tree.Describe(), "(0 (1 2))");
}

TEST(BestTreeForLeafOrderTest, RespectsLeafOrderPermutation) {
  Rng rng(3);
  CostFunction cost(testing_util::RandomStats(4, rng), 2.0);
  OrderPlan leaf_order({3, 1, 0, 2});
  TreePlan tree = BestTreeForLeafOrder(cost, leaf_order);
  // In-order traversal of the leaves must equal the requested order.
  std::string description = tree.Describe();
  std::string flattened;
  for (char c : description) {
    if (isdigit(c)) flattened += c;
  }
  EXPECT_EQ(flattened, "3102");
}

TEST(ZStreamOptimizerTest, UsesPatternLeafOrder) {
  Rng rng(4);
  CostFunction cost(testing_util::RandomStats(4, rng), 2.0);
  TreePlan tree = ZStreamOptimizer().Optimize(cost);
  std::string flattened;
  for (char c : tree.Describe()) {
    if (isdigit(c)) flattened += c;
  }
  EXPECT_EQ(flattened, "0123");
}

TEST(ZStreamOrdOptimizerTest, ReordersLeavesByGreedy) {
  // Slot 3 is rare and selective: GREEDY puts it first, so the leaf order
  // of ZSTREAM-ORD must start with 3.
  PatternStats stats(4);
  stats.set_rate(0, 20.0);
  stats.set_rate(1, 25.0);
  stats.set_rate(2, 30.0);
  stats.set_rate(3, 1.0);
  stats.set_sel(0, 3, 0.01);
  CostFunction cost(stats, 2.0);
  TreePlan tree = ZStreamOrdOptimizer().Optimize(cost);
  std::string flattened;
  for (char c : tree.Describe()) {
    if (isdigit(c)) flattened += c;
  }
  EXPECT_EQ(flattened[0], '3');
}

TEST(BestTreeForLeafOrderTest, LatencyAnchorMinimizesAncestorSiblings) {
  // Cost_lat^tree sums the PM of every sibling on the anchor's leaf-root
  // path (Sec. 6.1). With equal rates and no predicates the minimum is a
  // chain that joins the anchor against single leaves: (n-1) · W·r,
  // instead of one join against the full (W·r)^{n-1} subtree.
  PatternStats stats(4);
  for (int i = 0; i < 4; ++i) stats.set_rate(i, 10.0);
  CostSpec spec;
  spec.latency_alpha = 1e6;
  spec.latency_anchor = 3;
  CostFunction cost(stats, 2.0, spec);
  TreePlan plan = DpBushyOptimizer().Optimize(cost);
  EXPECT_NEAR(cost.TreeLatencyCost(plan), 3 * cost.LeafCost(0), 1e-9);
}

}  // namespace
}  // namespace cepjoin
