#include "optimizer/simulated_annealing.h"

#include <gtest/gtest.h>

#include "optimizer/dp_left_deep.h"
#include "optimizer/order_optimizers.h"
#include "optimizer/registry.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

TEST(SimulatedAnnealingTest, NeverWorseThanGreedyStart) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 9));
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    double greedy =
        cost.OrderCost(GreedyOrderOptimizer().Optimize(cost));
    double sa = cost.OrderCost(
        SimulatedAnnealingOptimizer(/*seed=*/trial).Optimize(cost));
    EXPECT_LE(sa, greedy + greedy * 1e-9);
  }
}

TEST(SimulatedAnnealingTest, BoundedBelowByDp) {
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 8));
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    double dp = cost.OrderCost(DpLeftDeepOptimizer().Optimize(cost));
    double sa = cost.OrderCost(
        SimulatedAnnealingOptimizer(/*seed=*/trial).Optimize(cost));
    EXPECT_GE(sa, dp - dp * 1e-9);
  }
}

TEST(SimulatedAnnealingTest, OftenEscapesGreedyLocalOptima) {
  // Across many random instances SA should match the DP optimum at least
  // as often as plain GREEDY does.
  Rng rng(33);
  int greedy_hits = 0;
  int sa_hits = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    CostFunction cost(testing_util::RandomStats(7, rng), 2.0);
    double dp = cost.OrderCost(DpLeftDeepOptimizer().Optimize(cost));
    double greedy = cost.OrderCost(GreedyOrderOptimizer().Optimize(cost));
    double sa = cost.OrderCost(
        SimulatedAnnealingOptimizer(/*seed=*/trial).Optimize(cost));
    if (greedy <= dp * (1 + 1e-9)) ++greedy_hits;
    if (sa <= dp * (1 + 1e-9)) ++sa_hits;
  }
  EXPECT_GE(sa_hits, greedy_hits);
  EXPECT_GT(sa_hits, trials / 2);
}

TEST(SimulatedAnnealingTest, DeterministicPerSeed) {
  Rng rng(34);
  CostFunction cost(testing_util::RandomStats(6, rng), 2.0);
  OrderPlan a = SimulatedAnnealingOptimizer(9).Optimize(cost);
  OrderPlan b = SimulatedAnnealingOptimizer(9).Optimize(cost);
  EXPECT_EQ(a, b);
}

TEST(SimulatedAnnealingTest, TinyInstancesShortCircuit) {
  PatternStats stats(2);
  stats.set_rate(0, 5.0);
  stats.set_rate(1, 1.0);
  CostFunction cost(stats, 2.0);
  OrderPlan plan = SimulatedAnnealingOptimizer(1).Optimize(cost);
  EXPECT_EQ(plan.size(), 2);
  EXPECT_EQ(plan.At(0), 1);  // greedy start: rare slot first
}

TEST(SimulatedAnnealingTest, AvailableViaRegistry) {
  auto optimizer = MakeOrderOptimizer("SA", 5).value();
  EXPECT_EQ(optimizer->name(), "SA");
  EXPECT_TRUE(optimizer->is_jqpg());
}

}  // namespace
}  // namespace cepjoin
