// Optimality guarantees: the DP algorithms must match exhaustive search,
// every heuristic must be bounded below by the DP optimum, and II must
// terminate in local minima.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "optimizer/dp_bushy.h"
#include "optimizer/dp_left_deep.h"
#include "optimizer/iterative_improvement.h"
#include "optimizer/registry.h"
#include "optimizer/tree_optimizers.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

double BestOrderByBruteForce(const CostFunction& cost) {
  int n = cost.size();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, cost.OrderCost(OrderPlan(perm)));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

double BestTreeByBruteForce(const CostFunction& cost) {
  int n = cost.size();
  double best = std::numeric_limits<double>::infinity();
  // Builder graphs cannot share nodes across alternatives, so rebuild the
  // candidate tree from its description instead: enumerate recursively
  // with a fresh builder per complete tree via description strings.
  std::function<std::vector<std::string>(uint64_t)> enumerate =
      [&](uint64_t mask) -> std::vector<std::string> {
    if (__builtin_popcountll(mask) == 1) {
      return {std::to_string(__builtin_ctzll(mask))};
    }
    std::vector<std::string> out;
    uint64_t low = mask & (~mask + 1);
    for (uint64_t s = (mask - 1) & mask; s > 0; s = (s - 1) & mask) {
      if (!(s & low)) continue;
      for (const std::string& l : enumerate(s)) {
        for (const std::string& r : enumerate(mask ^ s)) {
          out.push_back("(" + l + " " + r + ")");
        }
      }
    }
    return out;
  };
  // Parse the s-expressions back into TreePlans.
  std::function<int(const std::string&, size_t&, TreePlan::Builder&)> parse =
      [&](const std::string& text, size_t& i, TreePlan::Builder& b) -> int {
    if (text[i] == '(') {
      ++i;  // '('
      int left = parse(text, i, b);
      ++i;  // ' '
      int right = parse(text, i, b);
      ++i;  // ')'
      return b.AddInternal(left, right);
    }
    size_t start = i;
    while (i < text.size() && isdigit(text[i])) ++i;
    return b.AddLeaf(std::stoi(text.substr(start, i - start)));
  };
  for (const std::string& text :
       enumerate((uint64_t{1} << n) - 1)) {
    TreePlan::Builder b;
    size_t i = 0;
    int root = parse(text, i, b);
    best = std::min(best, cost.TreeCost(b.Build(root)));
  }
  return best;
}

class OptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimalityTest, DpLeftDeepMatchesExhaustiveSearch) {
  int n = GetParam();
  Rng rng(10 + n);
  for (int trial = 0; trial < 10; ++trial) {
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    OrderPlan dp = DpLeftDeepOptimizer().Optimize(cost);
    EXPECT_NEAR(cost.OrderCost(dp), BestOrderByBruteForce(cost),
                cost.OrderCost(dp) * 1e-9);
  }
}

TEST_P(OptimalityTest, DpLeftDeepOptimalUnderHybridLatencyCost) {
  int n = GetParam();
  Rng rng(20 + n);
  for (int trial = 0; trial < 5; ++trial) {
    CostSpec spec;
    spec.latency_alpha = rng.UniformReal(0.1, 2.0);
    spec.latency_anchor = static_cast<int>(rng.UniformInt(0, n - 1));
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0, spec);
    OrderPlan dp = DpLeftDeepOptimizer().Optimize(cost);
    EXPECT_NEAR(cost.OrderCost(dp), BestOrderByBruteForce(cost),
                std::max(1.0, cost.OrderCost(dp)) * 1e-9);
  }
}

TEST_P(OptimalityTest, HeuristicsNeverBeatDp) {
  int n = GetParam();
  Rng rng(30 + n);
  for (int trial = 0; trial < 10; ++trial) {
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    double dp = cost.OrderCost(DpLeftDeepOptimizer().Optimize(cost));
    for (const std::string& name : PaperOrderAlgorithms()) {
      double c = cost.OrderCost(MakeOrderOptimizer(name).value()->Optimize(cost));
      EXPECT_GE(c, dp - dp * 1e-9) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OptimalityTest, ::testing::Values(3, 5, 6, 7),
                         ::testing::PrintToStringParamName());

TEST(DpBushyTest, MatchesExhaustiveTreeSearchSmall) {
  for (int n : {2, 3, 4, 5}) {
    Rng rng(40 + n);
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    TreePlan dp = DpBushyOptimizer().Optimize(cost);
    EXPECT_NEAR(cost.TreeCost(dp), BestTreeByBruteForce(cost),
                cost.TreeCost(dp) * 1e-9)
        << "n=" << n;
  }
}

TEST(DpBushyTest, OptimalUnderHybridLatencyCost) {
  for (int n : {3, 4, 5}) {
    Rng rng(50 + n);
    CostSpec spec;
    spec.latency_alpha = 0.7;
    spec.latency_anchor = n - 1;
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0, spec);
    TreePlan dp = DpBushyOptimizer().Optimize(cost);
    EXPECT_NEAR(cost.TreeCost(dp), BestTreeByBruteForce(cost),
                cost.TreeCost(dp) * 1e-9);
  }
}

TEST(DpBushyTest, NeverWorseThanBestLeftDeepPlan) {
  // The bushy space strictly contains all left-deep shapes.
  Rng rng(60);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 8));
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    double bushy = cost.TreeCost(DpBushyOptimizer().Optimize(cost));
    double left_deep = cost.TreeCost(
        TreePlan::LeftDeep(DpLeftDeepOptimizer().Optimize(cost)));
    EXPECT_LE(bushy, left_deep + left_deep * 1e-9);
  }
}

TEST(IterativeImprovementTest, DescendsToLocalMinimum) {
  Rng rng(70);
  for (int trial = 0; trial < 5; ++trial) {
    int n = 6;
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    OrderPlan local = IterativeImprovementOptimizer::Descend(
        cost, OrderPlan::Identity(n));
    double c = cost.OrderCost(local);
    // No single swap improves a local minimum.
    std::vector<int> order = local.order();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        std::swap(order[i], order[j]);
        EXPECT_GE(cost.OrderCost(OrderPlan(order)), c - c * 1e-9);
        std::swap(order[i], order[j]);
      }
    }
  }
}

TEST(IterativeImprovementTest, GreedyStartNoWorseThanGreedy) {
  Rng rng(80);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 8));
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    double greedy =
        cost.OrderCost(MakeOrderOptimizer("GREEDY").value()->Optimize(cost));
    double ii = cost.OrderCost(MakeOrderOptimizer("II-GREEDY").value()->Optimize(cost));
    EXPECT_LE(ii, greedy + greedy * 1e-9);
  }
}

TEST(ZStreamTest, IntervalDpMatchesBruteForceOverFixedLeafOrder) {
  // ZStream explores all topologies for the pattern's leaf order; compare
  // with brute force restricted to trees whose in-order leaf traversal is
  // the identity.
  for (int n : {3, 4, 5}) {
    Rng rng(90 + n);
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    TreePlan zs = ZStreamOptimizer().Optimize(cost);
    // Brute force over contiguous interval splits (same space).
    std::function<double(int, int)> best = [&](int i, int j) -> double {
      if (i == j) return 0.0;
      uint64_t mask = 0;
      for (int k = i; k <= j; ++k) mask |= uint64_t{1} << k;
      double node = cost.TreeNodeCost(mask);
      double best_split = std::numeric_limits<double>::infinity();
      for (int m = i; m < j; ++m) {
        best_split = std::min(best_split, best(i, m) + best(m + 1, j));
      }
      return node + best_split;
    };
    double leaves = 0.0;
    for (int i = 0; i < n; ++i) leaves += cost.LeafCost(i);
    EXPECT_NEAR(cost.TreeCost(zs), leaves + best(0, n - 1),
                cost.TreeCost(zs) * 1e-9);
  }
}

TEST(ZStreamOrdTest, NeverWorseThanZStreamUnderReorderableStats) {
  // Fig. 3's point: reordering leaves can only help when the end types
  // correlate. ZSTREAM-ORD >= ZSTREAM does not hold universally, but DP-B
  // must dominate both.
  Rng rng(100);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 8));
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    double dpb = cost.TreeCost(DpBushyOptimizer().Optimize(cost));
    double zs = cost.TreeCost(ZStreamOptimizer().Optimize(cost));
    double zso = cost.TreeCost(ZStreamOrdOptimizer().Optimize(cost));
    EXPECT_LE(dpb, zs + zs * 1e-9);
    EXPECT_LE(dpb, zso + zso * 1e-9);
  }
}

TEST(ZStreamTest, Figure3CrossTypePredicateNeedsReordering) {
  // SEQ(A, B, C) with a highly selective predicate between A and C and
  // equal rates (Sec. 2.3): ZStream's fixed leaf order cannot join A with
  // C first, so a leaf-reordering algorithm must win.
  PatternStats stats(3);
  for (int i = 0; i < 3; ++i) stats.set_rate(i, 10.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) stats.set_sel(i, j, 0.5);  // ts orders
  }
  stats.set_sel(0, 2, 0.5 * 0.001);  // restrictive a.x = c.x
  CostFunction cost(stats, 10.0);
  double zs = cost.TreeCost(ZStreamOptimizer().Optimize(cost));
  double dpb = cost.TreeCost(DpBushyOptimizer().Optimize(cost));
  EXPECT_LT(dpb, zs * 0.5);
  // The optimal tree joins leaves 0 and 2 first, as in Fig. 3(c).
  TreePlan best = DpBushyOptimizer().Optimize(cost);
  uint64_t first_join = best.node(best.internal_postorder().front()).mask;
  EXPECT_EQ(first_join, 0b101u);
}

}  // namespace
}  // namespace cepjoin
