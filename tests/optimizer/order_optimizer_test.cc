#include "optimizer/order_optimizers.h"

#include <gtest/gtest.h>

#include "engine/engine_factory.h"
#include "optimizer/registry.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

TEST(TrivialOptimizerTest, ReturnsPatternOrder) {
  Rng rng(1);
  CostFunction cost(testing_util::RandomStats(5, rng), 2.0);
  EXPECT_EQ(TrivialOptimizer().Optimize(cost), OrderPlan::Identity(5));
}

TEST(EventFrequencyOptimizerTest, SortsByAscendingRate) {
  PatternStats stats(4);
  stats.set_rate(0, 30.0);
  stats.set_rate(1, 5.0);
  stats.set_rate(2, 45.0);
  stats.set_rate(3, 1.0);
  CostFunction cost(stats, 2.0);
  OrderPlan plan = EventFrequencyOptimizer().Optimize(cost);
  EXPECT_EQ(plan, OrderPlan({3, 1, 0, 2}));
}

TEST(EventFrequencyOptimizerTest, StableForEqualRates) {
  PatternStats stats(3);
  for (int i = 0; i < 3; ++i) stats.set_rate(i, 7.0);
  CostFunction cost(stats, 2.0);
  EXPECT_EQ(EventFrequencyOptimizer().Optimize(cost), OrderPlan::Identity(3));
}

TEST(GreedyOptimizerTest, PicksSelectiveRareFirst) {
  // Slot 2 is rare and its predicate to slot 0 is very selective; greedy
  // must start with 2.
  PatternStats stats(3);
  stats.set_rate(0, 10.0);
  stats.set_rate(1, 20.0);
  stats.set_rate(2, 1.0);
  stats.set_sel(0, 2, 0.01);
  CostFunction cost(stats, 2.0);
  OrderPlan plan = GreedyOrderOptimizer().Optimize(cost);
  EXPECT_EQ(plan.At(0), 2);
  EXPECT_EQ(plan.At(1), 0);  // joins the selective predicate immediately
}

TEST(GreedyOptimizerTest, LazyNfaMotivatingExample) {
  // The four-cameras example (Sec. 1): D is 10x rarer, all predicates
  // equally selective — every sensible algorithm starts with D.
  PatternStats stats(4);
  for (int i = 0; i < 3; ++i) stats.set_rate(i, 10.0);
  stats.set_rate(3, 1.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) stats.set_sel(i, j, 0.1);
  }
  CostFunction cost(stats, 2.0);
  EXPECT_EQ(GreedyOrderOptimizer().Optimize(cost).At(0), 3);
}

TEST(OrderAppendCostTest, AddsLatencyTermAfterAnchor) {
  PatternStats stats(3);
  for (int i = 0; i < 3; ++i) stats.set_rate(i, 2.0);
  CostSpec spec;
  spec.latency_alpha = 10.0;
  spec.latency_anchor = 0;
  CostFunction cost(stats, 1.0, spec);
  // Appending slot 1 to prefix {0} (anchor already placed) pays the
  // latency penalty; appending to {2} does not.
  double with_anchor = OrderAppendCost(cost, 0b001, 1);
  double without_anchor = OrderAppendCost(cost, 0b100, 1);
  EXPECT_NEAR(with_anchor - without_anchor, 10.0 * 2.0, 1e-9);
}

TEST(RegistryTest, CreatesAllPaperAlgorithms) {
  for (const std::string& name : PaperOrderAlgorithms()) {
    auto optimizer = MakeOrderOptimizer(name).value();
    EXPECT_EQ(optimizer->name(), name);
  }
  for (const std::string& name : PaperTreeAlgorithms()) {
    auto optimizer = MakeTreeOptimizer(name).value();
    EXPECT_EQ(optimizer->name(), name);
  }
  EXPECT_TRUE(MakeOrderOptimizer("KBZ").value()->is_jqpg());
  EXPECT_FALSE(MakeOrderOptimizer("TRIVIAL").value()->is_jqpg());
  EXPECT_FALSE(MakeTreeOptimizer("ZSTREAM").value()->is_jqpg());
}

TEST(RegistryTest, UnknownNamesReturnInvalidArgument) {
  // A typo'd algorithm name is a caller error, not a programmer error:
  // it must come back as a Status listing the known algorithms, never
  // abort the process.
  auto order = MakeOrderOptimizer("NOPE");
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(order.status().message().find("unknown order optimizer 'NOPE'"),
            std::string::npos);
  EXPECT_NE(order.status().message().find("GREEDY"), std::string::npos);

  auto tree = MakeTreeOptimizer("NOPE");
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(tree.status().message().find("unknown tree optimizer 'NOPE'"),
            std::string::npos);
  EXPECT_NE(tree.status().message().find("ZSTREAM"), std::string::npos);
}

TEST(RegistryTest, KnownAlgorithmsCoversBothPlanClasses) {
  std::vector<std::string> known = KnownAlgorithms();
  for (const std::string& name : known) {
    EXPECT_TRUE(ValidateAlgorithm(name).ok()) << name;
    if (IsTreeAlgorithm(name)) {
      EXPECT_TRUE(MakeTreeOptimizer(name).ok()) << name;
    } else {
      EXPECT_TRUE(MakeOrderOptimizer(name).ok()) << name;
    }
  }
  EXPECT_FALSE(ValidateAlgorithm("greedy").ok());  // names are uppercase
}

TEST(AllOptimizersTest, ProduceValidPlansOnRandomStats) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    int n = static_cast<int>(rng.UniformInt(2, 8));
    CostFunction cost(testing_util::RandomStats(n, rng),
                      rng.UniformReal(0.5, 10.0));
    for (const std::string& name : PaperOrderAlgorithms()) {
      OrderPlan plan = MakeOrderOptimizer(name).value()->Optimize(cost);
      EXPECT_EQ(plan.size(), n) << name;
    }
    for (const std::string& name : PaperTreeAlgorithms()) {
      TreePlan plan = MakeTreeOptimizer(name).value()->Optimize(cost);
      EXPECT_EQ(plan.num_leaves(), n) << name;
    }
  }
}

}  // namespace
}  // namespace cepjoin
