#include "optimizer/kbz.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "optimizer/dp_left_deep.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

// Random statistics whose predicate graph is exactly the given tree
// (parent vector); all other pairs have selectivity 1.
PatternStats TreeShapedStats(const std::vector<int>& parent, Rng& rng) {
  int n = static_cast<int>(parent.size());
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, rng.UniformReal(0.5, 30.0));
    if (parent[i] >= 0) {
      stats.set_sel(i, parent[i], rng.UniformReal(0.02, 0.9));
    }
  }
  return stats;
}

// All orders in which every slot appears after its parent.
void PrecedenceOrders(const std::vector<int>& parent,
                      const std::function<void(const std::vector<int>&)>& fn) {
  int n = static_cast<int>(parent.size());
  std::vector<int> order;
  std::vector<bool> used(n, false);
  std::function<void()> recurse = [&] {
    if (static_cast<int>(order.size()) == n) {
      fn(order);
      return;
    }
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      if (parent[i] >= 0 && !used[parent[i]]) continue;
      used[i] = true;
      order.push_back(i);
      recurse();
      order.pop_back();
      used[i] = false;
    }
  };
  recurse();
}

class KbzTest : public ::testing::TestWithParam<int> {};

TEST_P(KbzTest, LinearizeTreeOptimalAmongPrecedenceOrders) {
  // IKKBZ's guarantee: optimal among all orders respecting the rooted
  // precedence tree, for the ASI cost — which equals Cost_ord here.
  int n = GetParam();
  Rng rng(200 + n);
  for (int trial = 0; trial < 10; ++trial) {
    // Random tree rooted at 0.
    std::vector<int> parent(n, -1);
    for (int i = 1; i < n; ++i) {
      parent[i] = static_cast<int>(rng.UniformInt(0, i - 1));
    }
    PatternStats stats = TreeShapedStats(parent, rng);
    CostFunction cost(stats, 2.0);
    OrderPlan kbz = KbzOptimizer::LinearizeTree(cost, parent);
    double kbz_cost = cost.OrderCost(kbz);

    double best = std::numeric_limits<double>::infinity();
    PrecedenceOrders(parent, [&](const std::vector<int>& order) {
      best = std::min(best, cost.OrderCost(OrderPlan(order)));
    });
    EXPECT_NEAR(kbz_cost, best, best * 1e-9);
    // The KBZ order itself must respect precedence.
    for (int i = 0; i < n; ++i) {
      if (parent[i] >= 0) {
        EXPECT_LT(kbz.StepOf(parent[i]), kbz.StepOf(i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KbzTest, ::testing::Values(3, 4, 5, 6, 7),
                         ::testing::PrintToStringParamName());

TEST(KbzTest, SpanningTreePicksMostSelectiveEdges) {
  PatternStats stats(4);
  for (int i = 0; i < 4; ++i) stats.set_rate(i, 5.0);
  stats.set_sel(0, 1, 0.1);
  stats.set_sel(0, 2, 0.9);
  stats.set_sel(1, 2, 0.2);
  stats.set_sel(2, 3, 0.3);
  CostFunction cost(stats, 2.0);
  std::vector<int> parent = KbzOptimizer::SpanningTreeParents(cost, 0);
  EXPECT_EQ(parent[0], -1);
  EXPECT_EQ(parent[1], 0);  // 0.1 beats 0.2 via 2
  EXPECT_EQ(parent[2], 1);  // 0.2 beats 0.9 direct edge
  EXPECT_EQ(parent[3], 2);
}

TEST(KbzTest, NeverBeatsDpButStaysReasonable) {
  Rng rng(300);
  for (int trial = 0; trial < 20; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 8));
    CostFunction cost(testing_util::RandomStats(n, rng), 2.0);
    double kbz = cost.OrderCost(KbzOptimizer().Optimize(cost));
    double dp = cost.OrderCost(DpLeftDeepOptimizer().Optimize(cost));
    EXPECT_GE(kbz, dp - dp * 1e-9);
  }
}

TEST(KbzTest, OnAcyclicGraphMatchesDpWhenCrossProductsDoNotHelp) {
  // Star query, uniform rates, selective edges: the DP optimum respects
  // connectivity, so KBZ should find it (Sec. 4.3's star observation).
  PatternStats stats(5);
  stats.set_rate(0, 2.0);
  for (int i = 1; i < 5; ++i) {
    stats.set_rate(i, 10.0 + i);
    stats.set_sel(0, i, 0.05);
  }
  CostFunction cost(stats, 2.0);
  double kbz = cost.OrderCost(KbzOptimizer().Optimize(cost));
  double dp = cost.OrderCost(DpLeftDeepOptimizer().Optimize(cost));
  EXPECT_NEAR(kbz, dp, dp * 1e-9);
}

TEST(KbzDeathTest, TwoRootsAbort) {
  Rng rng(5);
  CostFunction cost(testing_util::RandomStats(3, rng), 2.0);
  EXPECT_DEATH(KbzOptimizer::LinearizeTree(cost, {-1, -1, 0}), "one root");
}

}  // namespace
}  // namespace cepjoin
