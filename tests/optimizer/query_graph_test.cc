#include "optimizer/query_graph.h"

#include <gtest/gtest.h>

#include "optimizer/auto_selector.h"
#include "optimizer/dp_left_deep.h"
#include "optimizer/registry.h"
#include "testing/test_util.h"

namespace cepjoin {
namespace {

PatternStats StatsWithEdges(int n,
                            const std::vector<std::pair<int, int>>& edges) {
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) stats.set_rate(i, 1.0 + i);
  for (const auto& [i, j] : edges) stats.set_sel(i, j, 0.5);
  return stats;
}

QueryGraphInfo Analyze(int n, const std::vector<std::pair<int, int>>& edges) {
  return AnalyzeQueryGraph(CostFunction(StatsWithEdges(n, edges), 1.0));
}

TEST(QueryGraphTest, NoPredicates) {
  QueryGraphInfo info = Analyze(4, {});
  EXPECT_EQ(info.topology, QueryGraphTopology::kNoPredicates);
  EXPECT_FALSE(info.connected);
  EXPECT_TRUE(info.acyclic);
  EXPECT_EQ(info.num_edges, 0);
}

TEST(QueryGraphTest, Chain) {
  QueryGraphInfo info = Analyze(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(info.topology, QueryGraphTopology::kChain);
  EXPECT_TRUE(info.connected);
  EXPECT_TRUE(info.acyclic);
}

TEST(QueryGraphTest, TwoNodeEdgeIsChain) {
  EXPECT_EQ(Analyze(2, {{0, 1}}).topology, QueryGraphTopology::kChain);
}

TEST(QueryGraphTest, Star) {
  QueryGraphInfo info = Analyze(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(info.topology, QueryGraphTopology::kStar);
}

TEST(QueryGraphTest, GeneralTree) {
  // A "broom": chain 0-1-2 plus leaves 3,4 under node 2.
  QueryGraphInfo info = Analyze(5, {{0, 1}, {1, 2}, {2, 3}, {2, 4}});
  EXPECT_EQ(info.topology, QueryGraphTopology::kTree);
  EXPECT_TRUE(info.acyclic);
}

TEST(QueryGraphTest, Clique) {
  QueryGraphInfo info =
      Analyze(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(info.topology, QueryGraphTopology::kClique);
  EXPECT_FALSE(info.acyclic);
}

TEST(QueryGraphTest, CyclicGeneral) {
  QueryGraphInfo info = Analyze(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  EXPECT_EQ(info.topology, QueryGraphTopology::kCyclicGeneral);
  EXPECT_FALSE(info.acyclic);
  EXPECT_TRUE(info.connected);
}

TEST(QueryGraphTest, Disconnected) {
  QueryGraphInfo info = Analyze(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(info.topology, QueryGraphTopology::kDisconnected);
  EXPECT_TRUE(info.acyclic);  // forest
  EXPECT_FALSE(info.connected);
}

TEST(QueryGraphTest, DisconnectedWithCycle) {
  QueryGraphInfo info = Analyze(5, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(info.topology, QueryGraphTopology::kDisconnected);
  EXPECT_FALSE(info.acyclic);
}

TEST(QueryGraphTest, DescribeIsHumanReadable) {
  QueryGraphInfo info = Analyze(4, {{0, 1}, {1, 2}, {2, 3}});
  std::string text = info.Describe();
  EXPECT_NE(text.find("chain"), std::string::npos);
  EXPECT_NE(text.find("4 slots"), std::string::npos);
  EXPECT_NE(text.find("3 predicate edges"), std::string::npos);
}

TEST(AutoSelectorTest, SmallPatternsUseDp) {
  CostFunction cost(StatsWithEdges(5, {{0, 1}, {1, 2}}), 1.0);
  AutoOrderOptimizer optimizer;
  EXPECT_EQ(optimizer.ChooseAlgorithm(cost), "DP-LD");
  // And thus the plan is optimal.
  EXPECT_NEAR(cost.OrderCost(optimizer.Optimize(cost)),
              cost.OrderCost(DpLeftDeepOptimizer().Optimize(cost)), 1e-9);
}

TEST(AutoSelectorTest, LargeAcyclicUsesKbz) {
  std::vector<std::pair<int, int>> chain;
  for (int i = 0; i + 1 < 16; ++i) chain.emplace_back(i, i + 1);
  CostFunction cost(StatsWithEdges(16, chain), 1.0);
  AutoOrderOptimizer optimizer(7, /*dp_threshold=*/12);
  EXPECT_EQ(optimizer.ChooseAlgorithm(cost), "KBZ");
  EXPECT_EQ(optimizer.Optimize(cost).size(), 16);
}

TEST(AutoSelectorTest, LargeCyclicUsesIterativeImprovement) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 16; ++i) edges.emplace_back(i, (i + 1) % 16);
  CostFunction cost(StatsWithEdges(16, edges), 1.0);
  AutoOrderOptimizer optimizer(7, /*dp_threshold=*/12);
  EXPECT_EQ(optimizer.ChooseAlgorithm(cost), "II-GREEDY");
}

TEST(AutoSelectorTest, NeverWorseThanGreedy) {
  Rng rng(91);
  for (int trial = 0; trial < 15; ++trial) {
    int n = static_cast<int>(rng.UniformInt(3, 15));
    CostFunction cost(testing_util::RandomStats(n, rng), 1.5);
    AutoOrderOptimizer optimizer(trial, /*dp_threshold=*/8);
    double auto_cost = cost.OrderCost(optimizer.Optimize(cost));
    double greedy_cost = cost.OrderCost(
        MakeOrderOptimizer("GREEDY").value()->Optimize(cost));
    EXPECT_LE(auto_cost, greedy_cost + greedy_cost * 1e-9);
  }
}

TEST(AutoSelectorTest, AvailableViaRegistry) {
  auto optimizer = MakeOrderOptimizer("AUTO").value();
  EXPECT_EQ(optimizer->name(), "AUTO");
  EXPECT_TRUE(optimizer->is_jqpg());
}

}  // namespace
}  // namespace cepjoin
