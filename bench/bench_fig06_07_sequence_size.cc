// Figures 6 & 7: throughput and memory versus pattern size for the pure
// sequence pattern set.

#include "harness.h"

int main() {
  using namespace cepjoin::bench;
  PrintHeader("Figures 6/7", "sequence patterns: metrics vs pattern size");
  RunSizeSweepFigure("Fig 6/7", cepjoin::PatternFamily::kSequence,
                     {3, 4, 5, 6, 7});
  return 0;
}
