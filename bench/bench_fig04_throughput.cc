// Figure 4: mean throughput per pattern family for (a) order-based and
// (b) tree-based plan-generation algorithms.

#include "harness.h"

int main() {
  using namespace cepjoin::bench;
  PrintHeader("Figure 4", "throughput by pattern type (higher is better)");
  RunFamilyFigure("Figure 4", Metric::kThroughput);
  return 0;
}
