// Figure 16: cost-model validation. Plans of widely varying cost are
// executed on the stream; throughput must anti-correlate with plan cost
// (roughly 1/x^c) and peak memory must grow roughly linearly with cost.

#include <cmath>

#include "harness.h"

namespace cepjoin {
namespace bench {
namespace {

struct Sample {
  double cost = 0.0;
  double throughput = 0.0;
  double memory = 0.0;
  double predicate_evals = 0.0;
};

std::vector<double> Ranks(const std::vector<double>& xs) {
  std::vector<size_t> idx(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size());
  for (size_t r = 0; r < idx.size(); ++r) ranks[idx[r]] = static_cast<double>(r);
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  double mx = 0, my = 0;
  size_t n = xs.size();
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  return sxy / std::sqrt(sxx * syy + 1e-30);
}

void Run() {
  const BenchEnv& env = Env();
  // 60 order-based and 60 tree-based plans (the paper's counts): mixed
  // pattern families and sizes, all plan-generation algorithms.
  std::vector<Sample> order_samples;
  std::vector<Sample> tree_samples;
  std::vector<PatternFamily> families = {PatternFamily::kSequence,
                                         PatternFamily::kConjunction};
  int per_cell = std::max(1, static_cast<int>(2 * Scale()));
  for (PatternFamily family : families) {
    for (int size : {3, 4, 5}) {
      for (int k = 0; k < per_cell; ++k) {
        PatternGenConfig pg;
        pg.family = family;
        pg.size = size;
        pg.window = WindowFor(family);
        pg.seed = 7000 + k + size * 17 +
                  static_cast<uint64_t>(family) * 131;
        SimplePattern pattern = GeneratePattern(env.universe, pg)[0];
        CostFunction cost = MakeCostFunction(
            pattern, env.collector.CollectForPattern(pattern), 0.0);
        for (const std::string& algorithm : PaperOrderAlgorithms()) {
          EnginePlan plan = MakePlan(algorithm, cost).value();
          RunResult result = Execute(pattern, plan, env.universe.stream);
          order_samples.push_back(
              {plan.cost, result.throughput_eps,
               static_cast<double>(result.peak_bytes),
               static_cast<double>(result.predicate_evals)});
        }
        for (const std::string& algorithm : PaperTreeAlgorithms()) {
          EnginePlan plan = MakePlan(algorithm, cost).value();
          RunResult result = Execute(pattern, plan, env.universe.stream);
          tree_samples.push_back({plan.cost, result.throughput_eps,
                                  static_cast<double>(result.peak_bytes),
                                  static_cast<double>(result.predicate_evals)});
        }
      }
    }
  }

  auto report = [](const char* label, const std::vector<Sample>& samples) {
    Table table(
        {"plan#", "cost", "throughput[ev/s]", "peak_mem[B]", "pred_evals"});
    std::vector<double> log_cost, log_tp, mem, cost_lin, evals;
    for (size_t i = 0; i < samples.size(); ++i) {
      table.AddRow({std::to_string(i), FormatSi(samples[i].cost),
                    FormatSi(samples[i].throughput),
                    FormatSi(samples[i].memory),
                    FormatSi(samples[i].predicate_evals)});
      log_cost.push_back(std::log(samples[i].cost + 1.0));
      log_tp.push_back(std::log(samples[i].throughput + 1.0));
      cost_lin.push_back(samples[i].cost);
      mem.push_back(samples[i].memory);
      evals.push_back(samples[i].predicate_evals);
    }
    std::printf("\n%s plans (%zu):\n", label, samples.size());
    table.Print();
    std::printf("corr(log cost, log throughput)  = %.3f  (expect strongly "
                "negative)\n",
                PearsonCorrelation(log_cost, log_tp));
    std::printf("corr(cost, peak memory)         = %.3f  (expect "
                "positive)\n",
                PearsonCorrelation(cost_lin, mem));
    std::printf("rank-corr(cost, peak memory)    = %.3f  (expect strongly "
                "positive)\n",
                PearsonCorrelation(Ranks(cost_lin), Ranks(mem)));
    // The model prices plans by partial-match counts; the interpreter
    // counts every predicate actually executed. Cheap plans must do less
    // predicate work, so the ranks should agree strongly.
    std::printf("rank-corr(cost, predicate evals)= %.3f  (expect strongly "
                "positive)\n",
                PearsonCorrelation(Ranks(cost_lin), Ranks(evals)));
  };
  report("order-based", order_samples);
  report("tree-based", tree_samples);
}

}  // namespace
}  // namespace bench
}  // namespace cepjoin

int main() {
  cepjoin::bench::PrintHeader(
      "Figure 16", "throughput & memory as functions of plan cost");
  cepjoin::bench::Run();
  return 0;
}
