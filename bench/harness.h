#ifndef CEPJOIN_BENCH_HARNESS_H_
#define CEPJOIN_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "api/cep_runtime.h"
#include "metrics/run_metrics.h"
#include "metrics/runner.h"
#include "metrics/table.h"
#include "optimizer/registry.h"
#include "stats/collector.h"
#include "workload/pattern_generator.h"
#include "workload/stock_generator.h"

namespace cepjoin {
namespace bench {

/// Scale factor from the CEPJOIN_BENCH_SCALE environment variable
/// (default 1.0). It multiplies stream duration and patterns per
/// configuration; raise it to approach the paper's original workload
/// sizes (which used 80.5M events and 100 patterns per point over 1.5
/// months of machine time).
double Scale();

/// The shared bench universe: a synthetic stock stream calibrated per
/// DESIGN.md (rates 1–15 ev/s, broad selectivity spectrum), plus its
/// statistics collector. Built once per process.
struct BenchEnv {
  StockUniverse universe;
  StatsCollector collector;
};
const BenchEnv& Env();

/// Default time window used by the bench patterns (seconds). The paper
/// used 20 minutes against 1-year NASDAQ data; we use sub-second windows
/// against a denser synthetic stream — same W·r operating range.
double WindowFor(PatternFamily family);

/// Number of patterns averaged per configuration point.
int PatternsPerPoint();

/// One grid point: family × size × algorithm (+ strategy, hybrid alpha).
struct PointConfig {
  PatternFamily family = PatternFamily::kSequence;
  int size = 4;
  std::string algorithm = "GREEDY";
  SelectionStrategy strategy = SelectionStrategy::kSkipTillAny;
  double latency_alpha = 0.0;
  int patterns = -1;        // -1: PatternsPerPoint()
  double window = -1.0;     // -1: WindowFor(family)
  uint64_t seed_base = 100;
};

/// Generates `patterns` random patterns of the configuration, plans each
/// with the algorithm, replays the shared stream, and averages the run
/// metrics (the paper's per-bar methodology).
RunAggregate RunPoint(const PointConfig& config);

/// Plans only (no execution): average plan cost and generation time for
/// the Fig. 17 experiments.
struct PlanOnlyResult {
  double mean_cost = 0.0;
  double mean_generation_seconds = 0.0;
};
PlanOnlyResult PlanPoint(const PointConfig& config);

/// Prints the standard figure banner.
void PrintHeader(const std::string& figure, const std::string& title);

/// Fig. 4/5 body: per pattern family × algorithm, mean metric across the
/// size range. `metric` selects throughput (events/s) or memory (peak
/// bytes).
enum class Metric { kThroughput, kMemory };
void RunFamilyFigure(const std::string& figure, Metric metric);

// --- machine-readable output (--json) ---------------------------------------
//
// Benches accumulate named records while printing their human tables,
// then write them as a JSON array when the user passed `--json <path>`
// (CI emits BENCH_<name>.json artifacts this way, giving the repo a perf
// trajectory that scripts can diff across commits).

/// Parses `--json <path>` (or `--json=<path>`) out of argv; returns the
/// path or an empty string.
std::string JsonPathFromArgs(int argc, char** argv);

/// Appends one record: {"bench": ..., "name": ..., "value": ..., "unit":
/// ...}. Values must be finite.
void RecordJson(const std::string& bench, const std::string& name,
                double value, const std::string& unit);

/// Writes all records to `path` and reports success; an empty path is a
/// no-op success (the flag was not passed).
bool WriteBenchJson(const std::string& path);

/// Fig. 6–15 body: one family, metric series per algorithm as a function
/// of pattern size.
void RunSizeSweepFigure(const std::string& figure, PatternFamily family,
                        const std::vector<int>& sizes);

}  // namespace bench
}  // namespace cepjoin

#endif  // CEPJOIN_BENCH_HARNESS_H_
