// Figures 8 & 9: throughput and memory versus pattern size for sequences
// with one negated event.

#include "harness.h"

int main() {
  using namespace cepjoin::bench;
  PrintHeader("Figures 8/9", "negation patterns: metrics vs pattern size");
  RunSizeSweepFigure("Fig 8/9", cepjoin::PatternFamily::kNegation,
                     {3, 4, 5, 6, 7});
  return 0;
}
