// Instance×instance combine microbench: a bushy AND plan whose probe
// side joins fresh (C,D) instances against a sibling buffer of N
// pre-built (A,B) instances, timed at sibling sizes 64 / 1024 / 8192 in
// both modes — the scalar TryCombine oracle and the columnar
// InstanceStore kernels (window gate + masked cross-pair spans). The
// setup phase (building the N sibling instances) is untimed; the timed
// region is exactly the probe feed, so the rate is candidate store
// lanes per second. Both modes must agree on match and predicate_evals
// counts (bit-identical combine), and in Release runs with
// CEPJOIN_BENCH_ASSERT=1 a columnar rate below the scalar rate at
// N=1024 fails the process (0.95 noise allowance, one re-measure with a
// longer budget first, mirroring bench_micro's self-check).
//
// Usage: bench_tree_combine [--json <path>]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness.h"
#include "pattern/pattern.h"
#include "plan/tree_plan.h"
#include "runtime/column_buffer.h"
#include "runtime/match.h"
#include "tree/tree_engine.h"

namespace cepjoin {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kProbePairs = 256;  // (C,D) pairs fed per round

/// RAII toggle so an early return cannot leave the process scalar.
struct ColumnarSwitch {
  explicit ColumnarSwitch(bool enabled) { SetColumnarKernelsEnabled(enabled); }
  ~ColumnarSwitch() { SetColumnarKernelsEnabled(true); }
};

/// AND(a:A, b:B, c:C, d:D) with pair ids on attr 0 (so the N setup pairs
/// produce exactly N (A,B) instances and each probe pair exactly one
/// (C,D) instance) and random attr-1 values driving the cross-pair
/// predicates the combine kernels evaluate: a ~50% gate, a ~95% gate,
/// and a rare closing gate that keeps match emission off the critical
/// path while still exercising multi-span survivor masking.
SimplePattern CombinePattern() {
  std::vector<EventSpec> events = {{/*type=*/0, "a", false, false},
                                   {/*type=*/1, "b", false, false},
                                   {/*type=*/2, "c", false, false},
                                   {/*type=*/3, "d", false, false}};
  std::vector<ConditionPtr> conditions = {
      std::make_shared<AttrCompare>(0, 0, CmpOp::kEq, 1, 0),
      std::make_shared<AttrCompare>(2, 0, CmpOp::kEq, 3, 0),
      std::make_shared<AttrCompare>(0, 1, CmpOp::kLt, 2, 1),
      std::make_shared<AttrCompare>(1, 1, CmpOp::kGe, 3, 1, -1.9),
      std::make_shared<AttrCompare>(0, 1, CmpOp::kGt, 3, 1, 1.9),
  };
  return SimplePattern(OperatorKind::kAnd, std::move(events), conditions,
                       /*window=*/1e9);
}

/// Bushy plan: root joins (A,B) against (C,D), so the (A,B) internal
/// node's instance store is the probe target.
TreePlan BushyPlan() {
  TreePlan::Builder builder;
  int a = builder.AddLeaf(0);
  int b = builder.AddLeaf(1);
  int c = builder.AddLeaf(2);
  int d = builder.AddLeaf(3);
  return builder.Build(builder.AddInternal(builder.AddInternal(a, b),
                                           builder.AddInternal(c, d)));
}

EventPtr MakeEvent(TypeId type, EventSerial serial, double id, double r) {
  Event e;
  e.type = type;
  e.serial = serial;
  e.partition_seq = serial;
  e.ts = static_cast<Timestamp>(serial) * 1e-6;
  e.attrs = {id, r};
  return std::make_shared<const Event>(std::move(e));
}

struct Workload {
  std::vector<EventPtr> setup;  // N interleaved (A_i, B_i) pairs
  std::vector<EventPtr> probe;  // kProbePairs interleaved (C_j, D_j) pairs
};

Workload MakeWorkload(size_t sibling_size) {
  Workload w;
  Rng rng(91 + sibling_size);
  EventSerial serial = 0;
  for (size_t i = 0; i < sibling_size; ++i) {
    double id = static_cast<double>(i);
    w.setup.push_back(MakeEvent(0, serial++, id, rng.UniformReal(-1.0, 1.0)));
    w.setup.push_back(MakeEvent(1, serial++, id, rng.UniformReal(-1.0, 1.0)));
  }
  for (size_t j = 0; j < kProbePairs; ++j) {
    double id = static_cast<double>(j);
    w.probe.push_back(MakeEvent(2, serial++, id, rng.UniformReal(-1.0, 1.0)));
    w.probe.push_back(MakeEvent(3, serial++, id, rng.UniformReal(-1.0, 1.0)));
  }
  return w;
}

struct RoundResult {
  double probe_seconds = 0.0;
  uint64_t matches = 0;
  uint64_t predicate_evals = 0;
  uint64_t kernel_lanes = 0;
};

/// One fresh engine: untimed setup feed, timed probe feed. The columnar
/// toggle is latched at engine construction, so the switch wraps the
/// whole round.
RoundResult RunRound(const SimplePattern& pattern, const TreePlan& plan,
                     const Workload& w, bool columnar) {
  ColumnarSwitch guard(columnar);
  CountingSink sink;
  TreeEngine engine(pattern, plan, &sink);
  engine.OnBatch(w.setup.data(), w.setup.size());
  Clock::time_point start = Clock::now();
  engine.OnBatch(w.probe.data(), w.probe.size());
  RoundResult result;
  result.probe_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  engine.Finish();
  result.matches = sink.count;
  result.predicate_evals = engine.counters().predicate_evals;
  result.kernel_lanes = engine.counters().instance_kernel_lanes;
  return result;
}

struct ModeResult {
  double lanes_per_second = 0.0;
  RoundResult last;
};

/// Warm-up round, then timed rounds until the probe-time budget is
/// reached. Rate is candidate store lanes per second: each of the
/// kProbePairs fresh (C,D) instances scans the full N-lane sibling
/// store.
ModeResult Measure(const SimplePattern& pattern, const TreePlan& plan,
                   const Workload& w, size_t sibling_size, bool columnar,
                   double min_seconds) {
  ModeResult mode;
  mode.last = RunRound(pattern, plan, w, columnar);  // warm-up
  double seconds = 0.0;
  uint64_t rounds = 0;
  while (seconds < min_seconds) {
    mode.last = RunRound(pattern, plan, w, columnar);
    seconds += mode.last.probe_seconds;
    ++rounds;
  }
  mode.lanes_per_second = static_cast<double>(rounds) *
                          static_cast<double>(kProbePairs) *
                          static_cast<double>(sibling_size) / seconds;
  return mode;
}

bool RunBench(const std::string& json_path) {
  SimplePattern pattern = CombinePattern();
  TreePlan plan = BushyPlan();
  std::printf(
      "instance-combine microbench: bushy AND((A,B),(C,D)), %d probe "
      "pairs per round, timed region = probe feed only\n\n",
      kProbePairs);
  std::printf("%10s %18s %18s %10s\n", "siblings", "scalar lanes/s",
              "columnar lanes/s", "speedup");

  bool ok = true;
  for (size_t sibling_size : {size_t{64}, size_t{1024}, size_t{8192}}) {
    Workload w = MakeWorkload(sibling_size);
    ModeResult scalar = Measure(pattern, plan, w, sibling_size,
                                /*columnar=*/false, 0.08);
    ModeResult columnar = Measure(pattern, plan, w, sibling_size,
                                  /*columnar=*/true, 0.08);
    // Bit-identical combine: same matches, same predicate_evals; the
    // kernel path must really have run (N lanes per probe instance).
    if (columnar.last.matches != scalar.last.matches ||
        columnar.last.predicate_evals != scalar.last.predicate_evals) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE at %zu siblings: scalar "
                   "%llu matches / %llu evals, columnar %llu / %llu\n",
                   sibling_size,
                   static_cast<unsigned long long>(scalar.last.matches),
                   static_cast<unsigned long long>(scalar.last.predicate_evals),
                   static_cast<unsigned long long>(columnar.last.matches),
                   static_cast<unsigned long long>(
                       columnar.last.predicate_evals));
      ok = false;
    }
    if (columnar.last.kernel_lanes <
            static_cast<uint64_t>(kProbePairs) * sibling_size ||
        scalar.last.kernel_lanes != 0) {
      std::fprintf(stderr,
                   "KERNEL PATH FAILURE at %zu siblings: columnar lanes "
                   "%llu, scalar lanes %llu\n",
                   sibling_size,
                   static_cast<unsigned long long>(columnar.last.kernel_lanes),
                   static_cast<unsigned long long>(scalar.last.kernel_lanes));
      ok = false;
    }

    double ratio = scalar.lanes_per_second > 0
                       ? columnar.lanes_per_second / scalar.lanes_per_second
                       : 0.0;
    if (ratio < 0.95 && sibling_size >= 1024) {
      // Apparent regression: re-measure once with a longer budget before
      // judging (shared-runner scheduler noise dominates short windows).
      scalar = Measure(pattern, plan, w, sibling_size, false, 0.3);
      columnar = Measure(pattern, plan, w, sibling_size, true, 0.3);
      ratio = scalar.lanes_per_second > 0
                  ? columnar.lanes_per_second / scalar.lanes_per_second
                  : 0.0;
    }
    std::printf("%10zu %18.3g %18.3g %9.2fx\n", sibling_size,
                scalar.lanes_per_second, columnar.lanes_per_second, ratio);
    std::string suffix = "_n" + std::to_string(sibling_size);
    bench::RecordJson("tree_combine", "scalar_lanes_per_sec" + suffix,
                      scalar.lanes_per_second, "lanes/s");
    bench::RecordJson("tree_combine", "columnar_lanes_per_sec" + suffix,
                      columnar.lanes_per_second, "lanes/s");
    bench::RecordJson("tree_combine", "speedup" + suffix, ratio, "x");

    if (sibling_size >= 1024 && ratio < 0.95) {
      std::fprintf(stderr,
                   "VECTORIZATION REGRESSION: columnar instance combine is "
                   "slower than the scalar oracle at %zu siblings "
                   "(%.2fx)\n",
                   sibling_size, ratio);
#ifdef NDEBUG
      const char* assert_env = std::getenv("CEPJOIN_BENCH_ASSERT");
      if (assert_env != nullptr && assert_env[0] == '1') ok = false;
#endif
    }
  }
  if (!bench::WriteBenchJson(json_path)) ok = false;
  return ok;
}

}  // namespace
}  // namespace cepjoin

int main(int argc, char** argv) {
  return cepjoin::RunBench(cepjoin::bench::JsonPathFromArgs(argc, argv)) ? 0
                                                                         : 1;
}
