// Figures 14 & 15: throughput and memory versus pattern size for
// composite patterns — disjunctions of three sequences.

#include "harness.h"

int main() {
  using namespace cepjoin::bench;
  PrintHeader("Figures 14/15", "disjunction patterns: metrics vs pattern size");
  RunSizeSweepFigure("Fig 14/15", cepjoin::PatternFamily::kDisjunction,
                     {3, 4, 5, 6, 7});
  return 0;
}
