// Multi-query scaling: N identical keyed queries served by ONE
// CepService (one shared ingest path, one routing pass) versus N
// independent KeyedCepRuntime instances each re-ingesting the stream.
// The sweep is queries x worker threads; the interesting column is the
// shared path's cost per query — with the routing pass amortized across
// queries, adding a query should cost engine work only, not another
// full pass over the stream.
//
// The per-query match count is the built-in correctness check: every
// row must report the same value (each query's match set is independent
// of how many neighbors share the service and of the thread count).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "api/cep_service.h"
#include "api/keyed_runtime.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SweepResult {
  double wall_seconds = 0.0;
  uint64_t matches_per_query = 0;  // identical across queries by contract
  bool diverged = false;           // any per-query count disagreed
};

SweepResult RunShared(const KeyedWorkload& workload, size_t queries,
                      size_t threads) {
  ServiceOptions options;
  options.history = &workload.stream;
  options.num_types = workload.registry.size();
  options.num_threads = threads;
  auto service = CepService::Create(options).value();
  std::vector<CountingSink> sinks(queries);
  for (size_t q = 0; q < queries; ++q) {
    service
        ->Register(
            QuerySpec::Simple(workload.pattern).Keyed().WithSink(&sinks[q]))
        .value();
  }
  auto start = std::chrono::steady_clock::now();
  service->ProcessStream(workload.stream);
  service->Finish();
  SweepResult result;
  result.wall_seconds = Seconds(start);
  result.matches_per_query = sinks[0].count;
  for (const CountingSink& sink : sinks) {
    if (sink.count != result.matches_per_query) {
      std::fprintf(stderr, "ERROR: per-query match counts diverged\n");
      result.diverged = true;
    }
  }
  return result;
}

SweepResult RunIndependent(const KeyedWorkload& workload, size_t queries,
                           size_t threads) {
  std::vector<CountingSink> sinks(queries);
  std::vector<std::unique_ptr<KeyedCepRuntime>> runtimes;
  RuntimeOptions options;
  options.num_threads = threads;
  for (size_t q = 0; q < queries; ++q) {
    runtimes.push_back(std::make_unique<KeyedCepRuntime>(
        workload.pattern, workload.stream, workload.registry.size(), options,
        &sinks[q]));
  }
  auto start = std::chrono::steady_clock::now();
  for (auto& runtime : runtimes) {
    runtime->ProcessStream(workload.stream);
    runtime->Finish();
  }
  SweepResult result;
  result.wall_seconds = Seconds(start);
  result.matches_per_query = sinks[0].count;
  return result;
}

}  // namespace
}  // namespace cepjoin

int main(int argc, char** argv) {
  using namespace cepjoin;
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::PrintHeader("multi-query",
                     "CepService shared ingest vs independent runtimes");

  const int kPartitions = 64;
  const double duration = 20.0 * bench::Scale();
  KeyedWorkload workload = MakeKeyedWorkload(kPartitions, duration, 7);
  std::printf("stream: %zu events, %d partitions, pattern %s\n\n",
              workload.stream.size(), kPartitions,
              workload.pattern.Describe(&workload.registry).c_str());

  std::printf("%-8s %-8s %-12s %-14s %-12s %-12s %s\n", "queries", "threads",
              "shared s", "indep s", "speedup", "q-ev/s",
              "matches/query");
  for (size_t queries : {1u, 4u, 16u}) {
    for (size_t threads : {1u, 2u, 4u}) {
      SweepResult shared = RunShared(workload, queries, threads);
      SweepResult independent = RunIndependent(workload, queries, threads);
      if (shared.diverged ||
          shared.matches_per_query != independent.matches_per_query) {
        std::fprintf(stderr,
                     "ERROR: shared/independent match counts diverged\n");
        return 1;
      }
      // Aggregate query-events per second: every query logically
      // consumes the whole stream, so the shared path serves
      // size * queries query-events in one pass.
      double query_event_rate =
          shared.wall_seconds > 0
              ? static_cast<double>(workload.stream.size()) *
                    static_cast<double>(queries) / shared.wall_seconds
              : 0.0;
      double speedup = shared.wall_seconds > 0
                           ? independent.wall_seconds / shared.wall_seconds
                           : 0.0;
      std::printf("%-8zu %-8zu %-12.3f %-14.3f %-12.2f %-12.0f %llu\n",
                  queries, threads, shared.wall_seconds,
                  independent.wall_seconds, speedup, query_event_rate,
                  static_cast<unsigned long long>(shared.matches_per_query));
      const std::string point = "q" + std::to_string(queries) + "_t" +
                                std::to_string(threads);
      bench::RecordJson("multi_query", "shared_wall_" + point,
                        shared.wall_seconds, "s");
      bench::RecordJson("multi_query", "independent_wall_" + point,
                        independent.wall_seconds, "s");
      bench::RecordJson("multi_query", "speedup_" + point, speedup, "x");
      bench::RecordJson("multi_query", "query_events_per_s_" + point,
                        query_event_rate, "ev/s");
      bench::RecordJson("multi_query", "matches_per_query_" + point,
                        static_cast<double>(shared.matches_per_query),
                        "matches");
    }
  }
  std::printf(
      "\n(speedup = independent wall / shared wall at equal query and "
      "thread counts; matches/query must be identical on every row)\n");
  if (!bench::WriteBenchJson(json_path)) return 1;
  return 0;
}
