#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace cepjoin {
namespace bench {

namespace {

struct JsonRecord {
  std::string bench;
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::vector<JsonRecord>& JsonRecords() {
  static std::vector<JsonRecord>* records = new std::vector<JsonRecord>();
  return *records;
}

/// Minimal string escaping: bench/metric names are plain identifiers,
/// but a stray quote or backslash must not corrupt the file.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return argv[i] + 7;
    }
  }
  return {};
}

void RecordJson(const std::string& bench, const std::string& name,
                double value, const std::string& unit) {
  JsonRecords().push_back({bench, name, value, unit});
}

bool WriteBenchJson(const std::string& path) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  const std::vector<JsonRecord>& records = JsonRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"name\": \"%s\", \"value\": %.17g, "
                 "\"unit\": \"%s\"}%s\n",
                 JsonEscape(records[i].bench).c_str(),
                 JsonEscape(records[i].name).c_str(), records[i].value,
                 JsonEscape(records[i].unit).c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  bool ok = std::fclose(f) == 0;
  if (ok) {
    std::printf("wrote %zu bench records to %s\n", records.size(),
                path.c_str());
  }
  return ok;
}

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("CEPJOIN_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double value = std::atof(env);
    return value > 0.0 ? value : 1.0;
  }();
  return scale;
}

const BenchEnv& Env() {
  static const BenchEnv* env = [] {
    StockGeneratorConfig config;
    config.num_symbols = 16;
    config.min_rate = 1.0;
    config.max_rate = 15.0;
    config.duration_seconds = 20.0 * Scale();
    config.seed = 2024;
    StockUniverse universe = GenerateStockStream(config);
    StatsCollector collector(universe.stream, universe.registry.size());
    return new BenchEnv{std::move(universe), std::move(collector)};
  }();
  return *env;
}

double WindowFor(PatternFamily family) {
  switch (family) {
    case PatternFamily::kKleene:
      return 0.5;  // keeps the Kleene power set tractable
    case PatternFamily::kConjunction:
      return 0.8;  // AND lacks the 1/k! ordering factor; keep PM bounded
    default:
      return 1.0;
  }
}

int PatternsPerPoint() {
  int patterns = static_cast<int>(5 * Scale());
  return patterns < 2 ? 2 : patterns;
}

RunAggregate RunPoint(const PointConfig& config) {
  const BenchEnv& env = Env();
  int patterns = config.patterns > 0 ? config.patterns : PatternsPerPoint();
  double window = config.window > 0 ? config.window : WindowFor(config.family);
  RunAggregate aggregate;
  for (int k = 0; k < patterns; ++k) {
    PatternGenConfig pg;
    pg.family = config.family;
    pg.size = config.size;
    pg.window = window;
    pg.strategy = config.strategy;
    pg.seed = config.seed_base + static_cast<uint64_t>(k);
    std::vector<SimplePattern> subpatterns =
        GeneratePattern(env.universe, pg);
    std::vector<EnginePlan> plans;
    plans.reserve(subpatterns.size());
    for (const SimplePattern& sub : subpatterns) {
      CostFunction cost = MakeCostFunction(
          sub, env.collector.CollectForPattern(sub), config.latency_alpha);
      plans.push_back(MakePlan(config.algorithm, cost).value());
    }
    ExecuteOptions options;
    options.min_measure_seconds = 0.05 * Scale();
    aggregate.Add(
        ExecuteDnf(subpatterns, plans, env.universe.stream, options));
  }
  aggregate.Finalize();
  return aggregate;
}

PlanOnlyResult PlanPoint(const PointConfig& config) {
  const BenchEnv& env = Env();
  int patterns = config.patterns > 0 ? config.patterns : PatternsPerPoint();
  double window = config.window > 0 ? config.window : WindowFor(config.family);
  PlanOnlyResult result;
  for (int k = 0; k < patterns; ++k) {
    PatternGenConfig pg;
    pg.family = config.family;
    pg.size = config.size;
    pg.window = window;
    pg.seed = config.seed_base + static_cast<uint64_t>(k);
    std::vector<SimplePattern> subpatterns =
        GeneratePattern(env.universe, pg);
    for (const SimplePattern& sub : subpatterns) {
      CostFunction cost = MakeCostFunction(
          sub, env.collector.CollectForPattern(sub), config.latency_alpha);
      EnginePlan plan = MakePlan(config.algorithm, cost).value();
      result.mean_cost += plan.cost;
      result.mean_generation_seconds += plan.generation_seconds;
    }
  }
  result.mean_cost /= patterns;
  result.mean_generation_seconds /= patterns;
  return result;
}

void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("(paper: Kolchinsky & Schuster, VLDB'18; synthetic stock\n");
  std::printf(" substrate per DESIGN.md; scale=%.2f via CEPJOIN_BENCH_SCALE)\n",
              Scale());
  std::printf("==========================================================\n");
}

namespace {

double MetricOf(const RunAggregate& aggregate, Metric metric) {
  return metric == Metric::kThroughput ? aggregate.throughput_eps
                                       : aggregate.peak_bytes;
}

}  // namespace

void RunFamilyFigure(const std::string& figure, Metric metric) {
  (void)figure;  // callers print their own PrintHeader banner
  const std::vector<int> sizes = {3, 4, 5};
  for (bool tree : {false, true}) {
    std::vector<std::string> algorithms =
        tree ? PaperTreeAlgorithms() : PaperOrderAlgorithms();
    std::printf("\n(%s) %s-based plan generation, mean over sizes 3-5:\n",
                tree ? "b" : "a", tree ? "tree" : "order");
    std::vector<std::string> headers = {"family"};
    for (const std::string& a : algorithms) headers.push_back(a);
    Table table(headers);
    for (PatternFamily family : AllFamilies()) {
      std::vector<std::string> row = {FamilyName(family)};
      for (const std::string& algorithm : algorithms) {
        RunAggregate total;
        for (int size : sizes) {
          PointConfig config;
          config.family = family;
          config.size = size;
          config.algorithm = algorithm;
          RunAggregate aggregate = RunPoint(config);
          total.throughput_eps += aggregate.throughput_eps;
          total.peak_bytes += aggregate.peak_bytes;
          ++total.runs;
        }
        total.throughput_eps /= total.runs;
        total.peak_bytes /= total.runs;
        row.push_back(FormatSi(MetricOf(total, metric)));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf("\nexpected shape: JQPG algorithms (GREEDY/II-*/DP-*) beat the "
              "CEP-native TRIVIAL/EFREQ/ZSTREAM on every family; DP "
              "variants best.\n");
}

void RunSizeSweepFigure(const std::string& figure, PatternFamily family,
                        const std::vector<int>& sizes) {
  for (Metric metric : {Metric::kThroughput, Metric::kMemory}) {
    for (bool tree : {false, true}) {
      std::vector<std::string> algorithms =
          tree ? PaperTreeAlgorithms() : PaperOrderAlgorithms();
      std::printf("\n%s %s, %s-based methods (%s):\n", figure.c_str(),
                  metric == Metric::kThroughput ? "throughput [events/s]"
                                                : "peak memory [bytes]",
                  tree ? "tree" : "order", FamilyName(family));
      std::vector<std::string> headers = {"size"};
      for (const std::string& a : algorithms) headers.push_back(a);
      Table table(headers);
      for (int size : sizes) {
        std::vector<std::string> row = {std::to_string(size)};
        for (const std::string& algorithm : algorithms) {
          PointConfig config;
          config.family = family;
          config.size = size;
          config.algorithm = algorithm;
          row.push_back(FormatSi(MetricOf(RunPoint(config), metric)));
        }
        table.AddRow(row);
      }
      table.Print();
    }
  }
}

}  // namespace bench
}  // namespace cepjoin
