// Delta-processing overhead microbench: the polarity refactor promises
// that INSERT-ONLY streams pay nothing beyond one predictable branch per
// event. Three modes per engine class over the same stock stream:
//
//   plain      — insert-only pattern (delta tracking off): the
//                pre-delta hot path, the baseline;
//   delta-on   — same stream, same plan, pattern with WithDeltaInput():
//                adds the emitted-match revocation log upkeep;
//   retract10% — delta stream retracting every 10th event half a window
//                after its insertion: the actual ± workload.
//
// Two ratios come out: "dense" (delta-on vs plain on the match-dense
// workload — the real, opt-in cost of the revocation log, reported for
// the cross-commit JSON trajectory) and "gate" (the same comparison at
// window/4, where matches are rare and the ratio isolates the per-event
// price of polarity support in the insert path). Ratios are medians of
// back-to-back round pairs, which cancel load drift; see PairMeasure.
// In Release runs with CEPJOIN_BENCH_ASSERT=1 a gate ratio below 98%
// fails the process (one longer re-measure pass first).
//
// Usage: bench_retraction [--json <path>]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "engine/engine_factory.h"
#include "harness.h"

namespace cepjoin {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kFeedBatch = 512;
constexpr int kRetractEvery = 10;

/// S plus a retraction for every kRetractEvery-th event, `delay`
/// seconds after its occurrence (only last occurrences of a (type,
/// partition, ts) key are retractable — the ledger resolves LIFO).
EventStream BuildDeltaStream(const EventStream& base, double delay) {
  const std::vector<EventPtr>& events = base.events();
  std::map<std::tuple<TypeId, uint32_t, Timestamp>, size_t> last_of_key;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = *events[i];
    last_of_key[std::make_tuple(e.type, e.partition, e.ts)] = i;
  }
  std::vector<Event> retractions;
  int eligible = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = *events[i];
    if (last_of_key.at(std::make_tuple(e.type, e.partition, e.ts)) != i) {
      continue;
    }
    if (eligible++ % kRetractEvery != 0) continue;
    Event r;
    r.type = e.type;
    r.partition = e.partition;
    r.polarity = -1;
    r.ts = e.ts + delay;
    r.target_ts = e.ts;
    retractions.push_back(r);
  }
  EventStream delta;
  delta.EnableRetractions();
  size_t j = 0;
  for (const EventPtr& e : events) {
    while (j < retractions.size() && retractions[j].ts < e->ts) {
      delta.Append(retractions[j++]);
    }
    Event copy = *e;
    copy.serial = 0;
    copy.partition_seq = 0;
    delta.Append(copy);
  }
  while (j < retractions.size()) delta.Append(retractions[j++]);
  return delta;
}

/// `copies` time-shifted repetitions of the base stream, separated by
/// `gap` seconds of silence. The shared universe is only ~3k events —
/// sub-millisecond rounds at engine speed, too short to resolve a 2%
/// throughput budget against timer and scheduler granularity.
EventStream ReplicateStream(const EventStream& base, int copies, double gap) {
  EventStream out;
  double shift = 0.0;
  const double stride = base.Duration() + gap;
  for (int c = 0; c < copies; ++c, shift += stride) {
    for (const EventPtr& e : base.events()) {
      Event copy = *e;
      copy.serial = 0;
      copy.partition_seq = 0;
      copy.ts = e->ts + shift;
      out.Append(copy);
    }
  }
  return out;
}

struct RoundResult {
  double feed_seconds = 0.0;
  uint64_t matches = 0;
  uint64_t revoked = 0;
};

RoundResult RunRound(const SimplePattern& pattern, const EnginePlan& plan,
                     const EventStream& stream) {
  CountingSink sink;
  std::unique_ptr<Engine> engine = BuildEngine(pattern, plan, &sink);
  const std::vector<EventPtr>& events = stream.events();
  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < events.size(); i += kFeedBatch) {
    engine->OnBatch(events.data() + i,
                    std::min(kFeedBatch, events.size() - i));
  }
  RoundResult result;
  result.feed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  engine->Finish();
  result.matches = sink.count;
  result.revoked = sink.revoked;
  return result;
}

/// Warm-up round, then `rounds` timed rounds; the score is the BEST
/// (minimum-time) round. Scheduler interference only ever slows a
/// round down, so the minimum is the cleanest estimate of the code's
/// actual speed — averaging would fold the noise into a ratio that has
/// a 2% budget.
double Measure(const SimplePattern& pattern, const EnginePlan& plan,
               const EventStream& stream, int rounds,
               RoundResult* last = nullptr) {
  RoundResult r = RunRound(pattern, plan, stream);  // warm-up
  double best = r.feed_seconds;
  for (int i = 0; i < rounds; ++i) {
    r = RunRound(pattern, plan, stream);
    best = std::min(best, r.feed_seconds);
  }
  if (last != nullptr) *last = r;
  return static_cast<double>(stream.size()) / best;
}

/// Accumulated paired measurement of the plain/delta-enabled modes.
/// Rates come from the best (minimum-time) round of each mode —
/// scheduler interference only ever slows a round down, so the minimum
/// is the cleanest speed estimate. The RATIO comes from the median of
/// per-pair ratios: each iteration runs plain then delta back-to-back,
/// so slow load drift hits both sides of a pair equally and cancels,
/// and the median discards the pairs a descheduling landed inside.
/// (An A/A experiment on this machine put the ratio-of-minima floor at
/// ±3% — too coarse for a 2% budget; median-of-pairs is much tighter.)
struct PairMeasure {
  double best_plain_s = 1e300;
  double best_delta_s = 1e300;
  std::vector<double> pair_ratios;
};

void MeasurePair(const SimplePattern& plain, const SimplePattern& delta,
                 const EnginePlan& plan, const EventStream& stream,
                 int rounds, PairMeasure* m) {
  RunRound(plain, plan, stream);  // warm-up
  RunRound(delta, plan, stream);
  for (int i = 0; i < rounds; ++i) {
    double p = RunRound(plain, plan, stream).feed_seconds;
    double d = RunRound(delta, plan, stream).feed_seconds;
    m->best_plain_s = std::min(m->best_plain_s, p);
    m->best_delta_s = std::min(m->best_delta_s, d);
    m->pair_ratios.push_back(p / d);
  }
}

double MedianPairRatio(const PairMeasure& m) {
  std::vector<double> sorted = m.pair_ratios;
  std::sort(sorted.begin(), sorted.end());
  size_t n = sorted.size();
  return n == 0 ? 0.0
                : (n % 2 != 0 ? sorted[n / 2]
                              : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]));
}

bool RunEngineClass(const std::string& algorithm, const std::string& tag,
                    const std::string& json_path_unused) {
  (void)json_path_unused;
  const bench::BenchEnv& env = bench::Env();

  PatternGenConfig pg;
  pg.family = PatternFamily::kSequence;
  pg.size = 4;
  pg.window = bench::WindowFor(PatternFamily::kSequence);
  pg.seed = 211;
  SimplePattern plain = GeneratePattern(env.universe, pg)[0];
  SimplePattern delta = plain.WithDeltaInput();
  CostFunction cost = MakeCostFunction(
      plain, env.collector.CollectForPattern(plain), 0.0);
  EnginePlan plan = MakePlan(algorithm, cost).value();

  EventStream insert_stream =
      ReplicateStream(env.universe.stream, 16, 2.0 * pg.window);
  EventStream delta_stream = BuildDeltaStream(insert_stream, pg.window * 0.5);

  // Dense workload: throughput + delta-mode cost, reported for the
  // cross-commit JSON trajectory. The revocation log append is real
  // per-match work the mode opts into, so this ratio is informational.
  PairMeasure dense;
  MeasurePair(plain, delta, plan, insert_stream, 8, &dense);
  const double n = static_cast<double>(insert_stream.size());
  double plain_rate = n / dense.best_plain_s;
  double delta_rate = n / dense.best_delta_s;
  double dense_ratio = MedianPairRatio(dense);
  RoundResult retract_last;
  double retract_rate = Measure(delta, plan, delta_stream, 4, &retract_last);

  // Gate workload: same pattern at window/4 — combinatorially fewer
  // matches, so per-MATCH log cost vanishes and the ratio isolates the
  // per-EVENT price of having polarity support compiled into the insert
  // path. The refactor's promise is that this is one predictable branch,
  // i.e. >= 98% of the pre-polarity (PR 7) hot loop.
  SimplePattern sparse(plain.op(), plain.events(), plain.conditions(),
                       pg.window / 4.0, plain.strategy());
  SimplePattern sparse_delta = sparse.WithDeltaInput();
  PairMeasure gate;
  MeasurePair(sparse, sparse_delta, plan, insert_stream, 8, &gate);
  double gate_ratio = MedianPairRatio(gate);
  bool ok = true;
  // An apparent overhead gets up to two fresh re-measure passes, each
  // judged on its own pairs: a burst of machine interference can poison
  // one pass end-to-end, but a real regression fails every pass.
  for (int attempt = 0; attempt < 2 && gate_ratio < 0.98; ++attempt) {
    PairMeasure retry;
    MeasurePair(sparse, sparse_delta, plan, insert_stream, 24, &retry);
    gate_ratio = MedianPairRatio(retry);
  }

  std::printf("%8s %14.3g %14.3g %7.3f %7.3f %14.3g %10llu\n", tag.c_str(),
              plain_rate, delta_rate, dense_ratio, gate_ratio, retract_rate,
              static_cast<unsigned long long>(retract_last.revoked));
  bench::RecordJson("retraction", tag + "_insert_only_events_per_sec",
                    plain_rate, "events/s");
  bench::RecordJson("retraction", tag + "_delta_enabled_events_per_sec",
                    delta_rate, "events/s");
  bench::RecordJson("retraction", tag + "_delta_enabled_ratio", dense_ratio,
                    "x");
  bench::RecordJson("retraction", tag + "_insert_path_overhead_ratio",
                    gate_ratio, "x");
  bench::RecordJson("retraction", tag + "_retract10_events_per_sec",
                    retract_rate, "events/s");
  bench::RecordJson("retraction", tag + "_retract10_revocations",
                    static_cast<double>(retract_last.revoked), "matches");

  if (retract_last.revoked == 0) {
    std::fprintf(stderr,
                 "DELTA PATH FAILURE (%s): the 10%%-retraction stream "
                 "revoked no matches — the workload is not exercising "
                 "revocation\n",
                 tag.c_str());
    ok = false;
  }
  if (gate_ratio < 0.98) {
    std::fprintf(stderr,
                 "INSERT PATH REGRESSION (%s): insert-only throughput with "
                 "polarity support compiled in is %.1f%% of the plain "
                 "insert path (budget: >= 98%%)\n",
                 tag.c_str(), 100.0 * gate_ratio);
#ifdef NDEBUG
    const char* assert_env = std::getenv("CEPJOIN_BENCH_ASSERT");
    if (assert_env != nullptr && assert_env[0] == '1') ok = false;
#endif
  }
  return ok;
}

bool RunBench(const std::string& json_path) {
  std::printf(
      "retraction overhead bench: SEQ-4 over the shared stock stream; "
      "retract10%% = every 10th event retracted window/2 later\n\n");
  std::printf("%8s %14s %14s %7s %7s %14s %10s\n", "engine", "plain ev/s",
              "delta-on ev/s", "dense", "gate", "retract10 ev/s", "revoked");
  bool ok = true;
  ok &= RunEngineClass("GREEDY", "nfa", json_path);
  ok &= RunEngineClass("ZSTREAM", "tree", json_path);
  if (!bench::WriteBenchJson(json_path)) ok = false;
  return ok;
}

}  // namespace
}  // namespace cepjoin

int main(int argc, char** argv) {
  return cepjoin::RunBench(cepjoin::bench::JsonPathFromArgs(argc, argv)) ? 0
                                                                         : 1;
}
