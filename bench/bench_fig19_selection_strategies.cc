// Figure 19: throughput of the sequence pattern set under the event
// selection strategies (Sec. 6.2): skip-till-any-match,
// skip-till-next-match, and (strict) contiguity; partition contiguity is
// included as well. The skip-till-next cost model drives planning for
// every non-any strategy, as the paper prescribes.

#include "harness.h"

namespace cepjoin {
namespace bench {
namespace {

void Run() {
  std::vector<std::pair<SelectionStrategy, const char*>> strategies = {
      {SelectionStrategy::kSkipTillAny, "skip-till-any"},
      {SelectionStrategy::kSkipTillNext, "skip-till-next"},
      {SelectionStrategy::kStrictContiguity, "contiguity"},
      {SelectionStrategy::kPartitionContiguity, "partition-contiguity"},
  };
  for (bool tree : {false, true}) {
    std::vector<std::string> algorithms =
        tree ? PaperTreeAlgorithms() : PaperOrderAlgorithms();
    std::printf("\n(%s) %s-based methods, throughput [events/s]:\n",
                tree ? "b" : "a", tree ? "tree" : "order");
    std::vector<std::string> headers = {"strategy"};
    for (const std::string& a : algorithms) headers.push_back(a);
    Table table(headers);
    for (const auto& [strategy, label] : strategies) {
      std::vector<std::string> row = {label};
      for (const std::string& algorithm : algorithms) {
        PointConfig config;
        config.family = PatternFamily::kSequence;
        config.size = 4;
        config.algorithm = algorithm;
        config.strategy = strategy;
        row.push_back(FormatSi(RunPoint(config).throughput_eps));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf("\nexpected shape: JQPG methods dominate under skip-till-any "
              "and (less so) skip-till-next; under contiguity the TRIVIAL "
              "static plan wins (no nondeterminism to optimize).\n");
}

}  // namespace
}  // namespace bench
}  // namespace cepjoin

int main() {
  cepjoin::bench::PrintHeader("Figure 19",
                              "throughput under event selection strategies");
  cepjoin::bench::Run();
  return 0;
}
