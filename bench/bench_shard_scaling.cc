// Shard scaling: the same keyed stream through ShardedRuntime at 1, 2,
// 4, ... worker threads (up to hardware_concurrency, and at least 4 so
// the sweep is comparable across machines). Partition-local matching is
// embarrassingly parallel, so throughput should scale near-linearly
// until the router thread or the core count saturates.
//
// The match count column is the built-in correctness check: it must be
// identical on every row (the deterministic merge guarantees the full
// match set is, too).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "api/keyed_runtime.h"
#include "common/rng.h"
#include "event/stream_source.h"
#include "parallel/sharded_runtime.h"
#include "pattern/pattern.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

struct SweepResult {
  size_t threads = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  uint64_t matches = 0;
};

SweepResult RunOnce(const SimplePattern& pattern, const EventStream& stream,
                    size_t num_types, size_t threads) {
  CountingSink sink;
  ShardedOptions options;
  options.num_threads = threads;
  ShardedRuntime runtime(pattern, stream, num_types, "GREEDY", &sink,
                         options);
  auto start = std::chrono::steady_clock::now();
  runtime.ProcessStream(stream);
  runtime.Finish();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  SweepResult result;
  result.threads = threads;
  result.wall_seconds = wall;
  result.events_per_second =
      wall > 0 ? static_cast<double>(stream.size()) / wall : 0.0;
  result.matches = sink.count;
  return result;
}

// Async ingestion: the same stream fanned out as `ingest` stride slices
// (timestamps are strictly increasing, so the pipeline's deterministic
// merge reproduces exactly the synchronous order — matches must equal
// the sync rows) parsed on dedicated ingest threads while the caller's
// thread only merges and routes.
SweepResult RunAsyncOnce(const KeyedWorkload& workload, size_t ingest,
                         size_t threads) {
  CountingSink sink;
  RuntimeOptions options;
  options.algorithm = "GREEDY";
  options.num_threads = threads;
  options.num_ingest_threads = ingest;
  KeyedCepRuntime runtime(workload.pattern, workload.stream,
                          workload.registry.size(), options, &sink);
  std::vector<std::unique_ptr<StreamSource>> sources;
  for (size_t i = 0; i < ingest; ++i) {
    sources.push_back(
        std::make_unique<EventStreamSource>(&workload.stream, i, ingest));
  }
  auto start = std::chrono::steady_clock::now();
  IngestResult ingested = runtime.ProcessSourceAsync(std::move(sources));
  runtime.Finish();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  if (!ingested.ok) {
    std::fprintf(stderr, "ingest failed: %s\n", ingested.error.c_str());
  }
  SweepResult result;
  result.threads = threads;
  result.wall_seconds = wall;
  result.events_per_second =
      wall > 0 ? static_cast<double>(workload.stream.size()) / wall : 0.0;
  result.matches = sink.count;
  return result;
}

}  // namespace
}  // namespace cepjoin

int main(int argc, char** argv) {
  using namespace cepjoin;
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  bench::PrintHeader("shard-scaling",
                     "ShardedRuntime throughput vs worker threads");

  const int kPartitions = 64;
  const double duration = 40.0 * bench::Scale();
  KeyedWorkload workload = MakeKeyedWorkload(kPartitions, duration, 7);
  std::printf("stream: %zu events, %d partitions, pattern %s\n\n",
              workload.stream.size(), kPartitions,
              workload.pattern.Describe(&workload.registry).c_str());

  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<size_t> sweep;
  for (size_t t = 1; t <= std::max<size_t>(4, hw); t *= 2) sweep.push_back(t);

  std::printf("%-8s %-10s %-14s %-9s %s\n", "threads", "wall s", "events/s",
              "speedup", "matches");
  double base_wall = 0.0;
  for (size_t threads : sweep) {
    SweepResult r = RunOnce(workload.pattern, workload.stream,
                            workload.registry.size(), threads);
    if (threads == 1) base_wall = r.wall_seconds;
    std::printf("%-8zu %-10.3f %-14.0f %-9.2f %llu\n", r.threads,
                r.wall_seconds, r.events_per_second,
                base_wall > 0 ? base_wall / r.wall_seconds : 0.0,
                static_cast<unsigned long long>(r.matches));
    std::string row = "sync/threads=" + std::to_string(threads);
    bench::RecordJson("shard_scaling", row + "/throughput",
                      r.events_per_second, "events/s");
    bench::RecordJson("shard_scaling", row + "/matches",
                      static_cast<double>(r.matches), "matches");
  }
  std::printf(
      "\n(hardware_concurrency = %zu; speedup beyond it measures "
      "oversubscription, not scaling)\n",
      hw);

  // ---- async ingestion sweep -------------------------------------------
  std::printf(
      "\nasync ingestion (stride-sliced stream, ingest threads parse, "
      "caller merges+routes):\n");
  std::printf("%-8s %-8s %-10s %-14s %-11s %s\n", "ingest", "threads",
              "wall s", "events/s", "vs sync", "matches");
  for (size_t ingest : {1u, 2u, 4u}) {
    for (size_t threads : sweep) {
      SweepResult r = RunAsyncOnce(workload, ingest, threads);
      std::printf("%-8zu %-8zu %-10.3f %-14.0f %-11.2f %llu\n", ingest,
                  r.threads, r.wall_seconds, r.events_per_second,
                  base_wall > 0 ? base_wall / r.wall_seconds : 0.0,
                  static_cast<unsigned long long>(r.matches));
      std::string row = "async/ingest=" + std::to_string(ingest) +
                        "/threads=" + std::to_string(threads);
      bench::RecordJson("shard_scaling", row + "/throughput",
                        r.events_per_second, "events/s");
      bench::RecordJson("shard_scaling", row + "/matches",
                        static_cast<double>(r.matches), "matches");
    }
  }
  std::printf(
      "\n(the matches column must be identical on every row — the merge "
      "and drain are thread-count independent)\n");
  return bench::WriteBenchJson(json_path) ? 0 : 1;
}
