// Figures 12 & 13: throughput and memory versus pattern size for
// sequences with one Kleene-closed event ("iteration patterns").

#include "harness.h"

int main() {
  using namespace cepjoin::bench;
  PrintHeader("Figures 12/13", "Kleene patterns: metrics vs pattern size");
  RunSizeSweepFigure("Fig 12/13", cepjoin::PatternFamily::kKleene,
                     {3, 4, 5, 6, 7});
  return 0;
}
