// Figure 5: mean peak memory per pattern family for (a) order-based and
// (b) tree-based plan-generation algorithms.

#include "harness.h"

int main() {
  using namespace cepjoin::bench;
  PrintHeader("Figure 5", "memory consumption by pattern type (lower is better)");
  RunFamilyFigure("Figure 5", Metric::kMemory);
  return 0;
}
