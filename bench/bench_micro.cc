// google-benchmark micro benchmarks: raw engine event rates, optimizer
// runtimes, and cost-function evaluation throughput.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "api/cep_service.h"
#include "common/rng.h"
#include "engine/engine_factory.h"
#include "metrics/runner.h"
#include "optimizer/registry.h"
#include "runtime/column_buffer.h"
#include "runtime/compiled_pattern.h"
#include "runtime/predicate_program.h"
#include "stats/collector.h"
#include "workload/pattern_generator.h"
#include "workload/stock_generator.h"

namespace cepjoin {
namespace {

const StockUniverse& Universe() {
  static const StockUniverse* universe = [] {
    StockGeneratorConfig config;
    config.num_symbols = 12;
    config.max_rate = 10.0;
    config.duration_seconds = 10.0;
    return new StockUniverse(GenerateStockStream(config));
  }();
  return *universe;
}

const StatsCollector& Collector() {
  static const StatsCollector* collector = [] {
    return new StatsCollector(Universe().stream, Universe().registry.size());
  }();
  return *collector;
}

SimplePattern BenchPattern(PatternFamily family, int size) {
  PatternGenConfig pg;
  pg.family = family;
  pg.size = size;
  pg.window = 0.5;
  pg.seed = 33;
  return GeneratePattern(Universe(), pg)[0];
}

void BM_NfaEngineEventRate(benchmark::State& state) {
  SimplePattern pattern =
      BenchPattern(PatternFamily::kSequence, static_cast<int>(state.range(0)));
  CostFunction cost(Collector().CollectForPattern(pattern), pattern.window());
  EnginePlan plan = MakePlan("GREEDY", cost).value();
  for (auto _ : state) {
    RunResult result = Execute(pattern, plan, Universe().stream);
    benchmark::DoNotOptimize(result.matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Universe().stream.size()));
}
BENCHMARK(BM_NfaEngineEventRate)->Arg(3)->Arg(5);

void BM_TreeEngineEventRate(benchmark::State& state) {
  SimplePattern pattern =
      BenchPattern(PatternFamily::kSequence, static_cast<int>(state.range(0)));
  CostFunction cost(Collector().CollectForPattern(pattern), pattern.window());
  EnginePlan plan = MakePlan("DP-B", cost).value();
  for (auto _ : state) {
    RunResult result = Execute(pattern, plan, Universe().stream);
    benchmark::DoNotOptimize(result.matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Universe().stream.size()));
}
BENCHMARK(BM_TreeEngineEventRate)->Arg(3)->Arg(5);

void BM_Optimizer(benchmark::State& state, const char* name, int n) {
  Rng rng(77);
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, rng.UniformReal(1, 15));
    for (int j = i + 1; j < n; ++j) {
      stats.set_sel(i, j, rng.Bernoulli(0.4) ? rng.UniformReal(0.05, 0.9) : 1);
    }
  }
  CostFunction cost(stats, 0.5);
  if (IsTreeAlgorithm(name)) {
    auto optimizer = MakeTreeOptimizer(name).value();
    for (auto _ : state) {
      benchmark::DoNotOptimize(optimizer->Optimize(cost));
    }
  } else {
    auto optimizer = MakeOrderOptimizer(name).value();
    for (auto _ : state) {
      benchmark::DoNotOptimize(optimizer->Optimize(cost));
    }
  }
}
BENCHMARK_CAPTURE(BM_Optimizer, greedy_n10, "GREEDY", 10);
BENCHMARK_CAPTURE(BM_Optimizer, ii_greedy_n10, "II-GREEDY", 10);
BENCHMARK_CAPTURE(BM_Optimizer, dp_ld_n14, "DP-LD", 14);
BENCHMARK_CAPTURE(BM_Optimizer, dp_b_n10, "DP-B", 10);
BENCHMARK_CAPTURE(BM_Optimizer, zstream_n10, "ZSTREAM", 10);
BENCHMARK_CAPTURE(BM_Optimizer, kbz_n10, "KBZ", 10);

// --- predicate evaluation: virtual ConditionSet vs compiled program ---
//
// AttrCompare-heavy condition sets (the dominant predicate kind of the
// paper's stock patterns: two attribute comparisons plus the SEQ
// rewrite's TsOrder per position pair), instantiated once per partition
// the way PartitionedRuntime / the sharded workers hold one engine per
// partition key. The argument is the partition count: at 1 everything is
// cache-resident and the two paths are bound by the same attribute
// loads; at production-shaped working sets (1024 partitions, the
// keyed-stream scenario) the virtual path drags thousands of scattered
// shared_ptr<Condition> objects and vtables through the cache while the
// compiled path streams 16-byte instructions — and counts
// predicate_evals for free, which the virtual path cannot.

constexpr int kPredPositions = 5;
constexpr int kPredAttrs = 4;

struct PredicateBenchState {
  std::vector<std::unique_ptr<ConditionSet>> sets;
  std::vector<std::unique_ptr<PredicateProgram>> programs;
  // Interleaved small allocations: condition objects of a long-lived
  // process are not heap-adjacent.
  std::vector<std::shared_ptr<std::vector<double>>> spacers;
  std::vector<Event> events;
};

const PredicateBenchState& PredicateBench(int num_partitions) {
  static std::unordered_map<int, std::unique_ptr<PredicateBenchState>> cache;
  std::unique_ptr<PredicateBenchState>& slot = cache[num_partitions];
  if (slot != nullptr) return *slot;
  slot = std::make_unique<PredicateBenchState>();
  Rng rng(7);
  for (int s = 0; s < num_partitions; ++s) {
    std::vector<ConditionPtr> conditions;
    for (int i = 0; i < kPredPositions; ++i) {
      for (int j = i + 1; j < kPredPositions; ++j) {
        auto attr = [&] {
          return static_cast<AttrId>(rng.UniformInt(0, kPredAttrs - 1));
        };
        conditions.push_back(std::make_shared<AttrCompare>(
            i, attr(), rng.Bernoulli(0.5) ? CmpOp::kLt : CmpOp::kGe, j,
            attr(), rng.UniformReal(-0.5, 0.5)));
        slot->spacers.push_back(std::make_shared<std::vector<double>>(4));
        conditions.push_back(std::make_shared<AttrCompare>(
            j, attr(), rng.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kGt, i,
            attr(), rng.UniformReal(-0.5, 0.5)));
        slot->spacers.push_back(std::make_shared<std::vector<double>>(4));
        conditions.push_back(std::make_shared<TsOrder>(i, j));
        slot->spacers.push_back(std::make_shared<std::vector<double>>(4));
      }
    }
    slot->sets.push_back(
        std::make_unique<ConditionSet>(kPredPositions, conditions));
    slot->programs.push_back(
        std::make_unique<PredicateProgram>(*slot->sets.back()));
  }
  slot->events.resize(256);
  for (size_t k = 0; k < slot->events.size(); ++k) {
    Event& e = slot->events[k];
    e.ts = static_cast<Timestamp>(k) * 0.01;
    e.serial = k;
    e.attrs.resize(kPredAttrs);
    for (int a = 0; a < kPredAttrs; ++a) {
      e.attrs[a] = rng.UniformReal(-1.0, 1.0);
    }
  }
  return *slot;
}

constexpr int kPredPairsPerPartition = 8;

int64_t PredicateItems(const PredicateBenchState& bench) {
  return static_cast<int64_t>(bench.sets.size()) * kPredPairsPerPartition *
         kPredPositions * (kPredPositions - 1) / 2;
}

void BM_PredicateEvalVirtual(benchmark::State& state) {
  const PredicateBenchState& bench =
      PredicateBench(static_cast<int>(state.range(0)));
  const std::vector<Event>& ev = bench.events;
  size_t accepted = 0;
  for (auto _ : state) {
    for (size_t s = 0; s < bench.sets.size(); ++s) {
      const ConditionSet& set = *bench.sets[s];
      for (size_t k = 0; k < kPredPairsPerPartition; ++k) {
        size_t at = (s + k) % (ev.size() - 1);
        for (int i = 0; i < kPredPositions; ++i) {
          for (int j = i + 1; j < kPredPositions; ++j) {
            accepted += set.EvalPair(i, j, ev[at], ev[at + 1]);
          }
        }
      }
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * PredicateItems(bench));
}
BENCHMARK(BM_PredicateEvalVirtual)->Arg(1)->Arg(1024);

void BM_PredicateEvalCompiled(benchmark::State& state) {
  const PredicateBenchState& bench =
      PredicateBench(static_cast<int>(state.range(0)));
  const std::vector<Event>& ev = bench.events;
  size_t accepted = 0;
  uint64_t evals = 0;
  for (auto _ : state) {
    for (size_t s = 0; s < bench.programs.size(); ++s) {
      const PredicateProgram& program = *bench.programs[s];
      for (size_t k = 0; k < kPredPairsPerPartition; ++k) {
        size_t at = (s + k) % (ev.size() - 1);
        for (int i = 0; i < kPredPositions; ++i) {
          for (int j = i + 1; j < kPredPositions; ++j) {
            accepted += program.EvalPair(i, j, ev[at], ev[at + 1], &evals);
          }
        }
      }
    }
    benchmark::DoNotOptimize(accepted);
    benchmark::DoNotOptimize(evals);
  }
  state.SetItemsProcessed(state.iterations() * PredicateItems(bench));
}
BENCHMARK(BM_PredicateEvalCompiled)->Arg(1)->Arg(1024);

// --- columnar run kernels vs per-lane compiled interpreter ---
//
// The creation-scan shape of the engine hot loop: one fixed
// (partial-match) event probing a window buffer of R candidates across
// every position pair. Baseline is PR 2's compiled interpreter called
// once per candidate; the columnar path evaluates the run at a time
// (EvalPairRun over ColumnBuffer columns with a survivor bitmask). The
// acceptance bar for this PR is columnar >= 1.5x compiled at R = 1024.

struct RunBenchState {
  std::unique_ptr<ConditionSet> set;
  std::unique_ptr<PredicateProgram> program;
  std::vector<EventPtr> keepalive;
  ColumnBuffer buffer;
  Event fixed;
};

const RunBenchState& RunBench(int run_length) {
  static std::unordered_map<int, std::unique_ptr<RunBenchState>> cache;
  std::unique_ptr<RunBenchState>& slot = cache[run_length];
  if (slot != nullptr) return *slot;
  slot = std::make_unique<RunBenchState>();
  Rng rng(9);
  std::vector<ConditionPtr> conditions;
  for (int i = 0; i < kPredPositions; ++i) {
    for (int j = i + 1; j < kPredPositions; ++j) {
      auto attr = [&] {
        return static_cast<AttrId>(rng.UniformInt(0, kPredAttrs - 1));
      };
      conditions.push_back(std::make_shared<AttrCompare>(
          i, attr(), rng.Bernoulli(0.5) ? CmpOp::kLt : CmpOp::kGe, j, attr(),
          rng.UniformReal(-0.5, 0.5)));
      conditions.push_back(std::make_shared<AttrCompare>(
          j, attr(), rng.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kGt, i, attr(),
          rng.UniformReal(-0.5, 0.5)));
      conditions.push_back(std::make_shared<TsOrder>(i, j));
    }
  }
  slot->set = std::make_unique<ConditionSet>(kPredPositions, conditions);
  slot->program = std::make_unique<PredicateProgram>(*slot->set);
  for (int k = 0; k < run_length; ++k) {
    Event e;
    e.ts = static_cast<Timestamp>(k) * 0.001;
    e.serial = static_cast<EventSerial>(k);
    e.attrs.resize(kPredAttrs);
    for (int a = 0; a < kPredAttrs; ++a) {
      e.attrs[a] = rng.UniformReal(-1.0, 1.0);
    }
    auto ptr = std::make_shared<const Event>(std::move(e));
    slot->keepalive.push_back(ptr);
    slot->buffer.Append(ptr);
  }
  slot->fixed.ts = 0.5;
  slot->fixed.serial = 1u << 20;
  slot->fixed.attrs.resize(kPredAttrs);
  for (int a = 0; a < kPredAttrs; ++a) {
    slot->fixed.attrs[a] = rng.UniformReal(-1.0, 1.0);
  }
  return *slot;
}

constexpr int kRunPairs = kPredPositions * (kPredPositions - 1) / 2;

void BM_PredicateEvalCompiledRun(benchmark::State& state) {
  const RunBenchState& bench = RunBench(static_cast<int>(state.range(0)));
  const size_t n = bench.buffer.size();
  size_t accepted = 0;
  uint64_t evals = 0;
  for (auto _ : state) {
    for (int i = 0; i < kPredPositions; ++i) {
      for (int j = i + 1; j < kPredPositions; ++j) {
        for (size_t k = 0; k < n; ++k) {
          accepted += bench.program->EvalPair(i, j, bench.fixed,
                                              *bench.buffer[k], &evals);
        }
      }
    }
    benchmark::DoNotOptimize(accepted);
    benchmark::DoNotOptimize(evals);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) *
                          kRunPairs);
}
BENCHMARK(BM_PredicateEvalCompiledRun)->Arg(64)->Arg(1024);

void BM_PredicateEvalColumnarRun(benchmark::State& state) {
  const RunBenchState& bench = RunBench(static_cast<int>(state.range(0)));
  const ColumnRun run = bench.buffer.Run();
  uint64_t evals = 0;
  uint64_t survivors = 0;
  for (auto _ : state) {
    for (int i = 0; i < kPredPositions; ++i) {
      for (int j = i + 1; j < kPredPositions; ++j) {
        LaneMask mask(run.size);
        bench.program->EvalPairRun(i, j, bench.fixed, run, mask.words(),
                                   &evals);
        survivors += mask.words()[0];
      }
    }
    benchmark::DoNotOptimize(survivors);
    benchmark::DoNotOptimize(evals);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(run.size) * kRunPairs);
}
BENCHMARK(BM_PredicateEvalColumnarRun)->Arg(64)->Arg(1024);

void BM_OrderCostEvaluation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, rng.UniformReal(1, 15));
    for (int j = i + 1; j < n; ++j) stats.set_sel(i, j, 0.3);
  }
  CostFunction cost(stats, 0.5);
  OrderPlan plan = OrderPlan::Identity(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.OrderCost(plan));
  }
}
BENCHMARK(BM_OrderCostEvaluation)->Arg(5)->Arg(10)->Arg(20);

/// Guard against silent de-vectorization: times the columnar kernels
/// against the per-lane compiled interpreter on the 1024-lane
/// BM_PredicateEval workload and reports both. In Release builds with
/// CEPJOIN_BENCH_ASSERT=1 in the environment (the CI bench smoke job), a
/// columnar path slower than the scalar path fails the process.
bool VerifyColumnarThroughput() {
  using Clock = std::chrono::steady_clock;
  const RunBenchState& bench = RunBench(1024);
  const ColumnRun run = bench.buffer.Run();
  const size_t n = bench.buffer.size();

  uint64_t sink = 0;
  auto time_loop = [&](double min_seconds, auto&& body) {
    // Warm-up pass, then timed passes until the budget is reached.
    body();
    Clock::time_point start = Clock::now();
    double seconds = 0.0;
    uint64_t rounds = 0;
    while (seconds < min_seconds) {
      body();
      ++rounds;
      seconds = std::chrono::duration<double>(Clock::now() - start).count();
    }
    return static_cast<double>(rounds) * static_cast<double>(n) * kRunPairs /
           seconds;
  };
  auto scalar_body = [&] {
    uint64_t evals = 0;
    for (int i = 0; i < kPredPositions; ++i) {
      for (int j = i + 1; j < kPredPositions; ++j) {
        for (size_t k = 0; k < n; ++k) {
          sink += bench.program->EvalPair(i, j, bench.fixed,
                                          *bench.buffer[k], &evals);
        }
      }
    }
    sink += evals;
  };
  auto columnar_body = [&] {
    uint64_t evals = 0;
    for (int i = 0; i < kPredPositions; ++i) {
      for (int j = i + 1; j < kPredPositions; ++j) {
        LaneMask mask(run.size);
        bench.program->EvalPairRun(i, j, bench.fixed, run, mask.words(),
                                   &evals);
        sink += mask.words()[0];
      }
    }
    sink += evals;
  };

  double scalar_rate = time_loop(0.05, scalar_body);
  double columnar_rate = time_loop(0.05, columnar_body);
  // The healthy margin is >= 2x, so any apparent loss is either a real
  // regression or scheduler noise in the short window: re-measure once
  // with a longer budget before judging, and allow 5% measurement noise
  // (shared CI runners) on the verdict itself.
  if (columnar_rate < scalar_rate) {
    scalar_rate = time_loop(0.25, scalar_body);
    columnar_rate = time_loop(0.25, columnar_body);
  }
  benchmark::DoNotOptimize(sink);

  double ratio = scalar_rate > 0 ? columnar_rate / scalar_rate : 0.0;
  std::printf(
      "\ncolumnar self-check (1024-lane runs): compiled %.3g pairs/s, "
      "columnar %.3g pairs/s, speedup %.2fx\n",
      scalar_rate, columnar_rate, ratio);
  if (ratio >= 0.95) return true;
  std::fprintf(stderr,
               "VECTORIZATION REGRESSION: columnar predicate path is slower "
               "than the scalar interpreter (%.2fx)\n",
               ratio);
#ifdef NDEBUG
  const char* assert_env = std::getenv("CEPJOIN_BENCH_ASSERT");
  if (assert_env != nullptr && assert_env[0] == '1') return false;
#endif
  return true;  // report-only outside asserting Release runs
}

/// Guard for the observability hot path: replays a stream through a
/// CepService with metrics on and off (detailed stage timers are a
/// separate opt-in compile flag and stay out of this build) and compares
/// end-to-end event rates. The striped instruments cost low single-digit
/// nanoseconds per event and ~100ns per *match* (three counter bumps, a
/// histogram record, the last-position scan), so the workload must have
/// a realistic match selectivity for the per-event budget to be the
/// thing measured: this one runs a 3-step sequence with a tight window
/// over a long stream (~7.4k events, ~1.3% match rate — real CEP
/// patterns are selective; the shared 0.5s-window bench universe matches
/// on 14% of events, which would turn this into a per-match benchmark).
/// Metrics-on must hold >= 98% of the metrics-off rate; on/off rounds
/// are interleaved so CPU-frequency and load drift hit both sides
/// equally, an apparent failure is re-measured with a longer budget, and
/// the verdict allows 5% measurement noise, failing the process only in
/// Release runs with CEPJOIN_BENCH_ASSERT=1.
bool VerifyMetricsOverhead() {
  using Clock = std::chrono::steady_clock;
  struct NullSink : MatchSink {
    void OnMatch(const Match&) override {}
  };
  static const StockUniverse* universe = [] {
    StockGeneratorConfig config;
    config.num_symbols = 12;
    config.max_rate = 10.0;
    config.duration_seconds = 100.0;
    return new StockUniverse(GenerateStockStream(config));
  }();
  static const StatsCollector* collector =
      new StatsCollector(universe->stream, universe->registry.size());
  PatternGenConfig pg;
  pg.family = PatternFamily::kSequence;
  pg.size = 3;
  pg.window = 0.15;
  pg.seed = 33;
  SimplePattern pattern = GeneratePattern(*universe, pg)[0];
  const EventStream& stream = universe->stream;

  // One replay: service construction and registration are untimed (the
  // overhead under test is per-event/per-match recording, not setup).
  auto run_once = [&](bool enable_metrics) {
    ServiceOptions options;
    options.collector = collector;
    options.num_types = universe->registry.size();
    options.enable_metrics = enable_metrics;
    auto service = CepService::Create(options).value();
    NullSink sink;
    service->Register(QuerySpec::Simple(pattern).WithSink(&sink)).value();
    Clock::time_point start = Clock::now();
    service->ProcessStream(stream);
    service->Finish();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  // Alternating off/on rounds: both sides sample the same machine
  // conditions, so slow drift (thermal clocking, a neighbour tenant)
  // cancels out of the ratio instead of landing on whichever side ran
  // second.
  auto time_pair = [&](double min_seconds, double* off_rate,
                       double* on_rate) {
    run_once(false);  // warm-up
    run_once(true);
    double seconds[2] = {0.0, 0.0};
    uint64_t rounds = 0;
    while (seconds[0] + seconds[1] < min_seconds) {
      seconds[0] += run_once(false);
      seconds[1] += run_once(true);
      ++rounds;
    }
    double events = static_cast<double>(rounds) *
                    static_cast<double>(stream.size());
    *off_rate = events / seconds[0];
    *on_rate = events / seconds[1];
  };

  double off_rate = 0.0;
  double on_rate = 0.0;
  time_pair(0.4, &off_rate, &on_rate);
  if (on_rate < 0.98 * off_rate) {
    time_pair(2.0, &off_rate, &on_rate);
  }
  double ratio = off_rate > 0 ? on_rate / off_rate : 0.0;
  std::printf(
      "\nmetrics overhead self-check: metrics off %.3g ev/s, on %.3g ev/s, "
      "ratio %.3f\n",
      off_rate, on_rate, ratio);
  if (ratio >= 0.95) return true;
  std::fprintf(stderr,
               "METRICS OVERHEAD REGRESSION: metrics-on ingest runs at "
               "%.2fx the metrics-off rate (budget: >= 0.98, noise "
               "allowance to 0.95)\n",
               ratio);
#ifdef NDEBUG
  const char* assert_env = std::getenv("CEPJOIN_BENCH_ASSERT");
  if (assert_env != nullptr && assert_env[0] == '1') return false;
#endif
  return true;  // report-only outside asserting Release runs
}

}  // namespace
}  // namespace cepjoin

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bool ok = cepjoin::VerifyColumnarThroughput();
  ok = cepjoin::VerifyMetricsOverhead() && ok;
  return ok ? 0 : 1;
}
