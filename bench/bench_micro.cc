// google-benchmark micro benchmarks: raw engine event rates, optimizer
// runtimes, and cost-function evaluation throughput.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/engine_factory.h"
#include "metrics/runner.h"
#include "optimizer/registry.h"
#include "stats/collector.h"
#include "workload/pattern_generator.h"
#include "workload/stock_generator.h"

namespace cepjoin {
namespace {

const StockUniverse& Universe() {
  static const StockUniverse* universe = [] {
    StockGeneratorConfig config;
    config.num_symbols = 12;
    config.max_rate = 10.0;
    config.duration_seconds = 10.0;
    return new StockUniverse(GenerateStockStream(config));
  }();
  return *universe;
}

const StatsCollector& Collector() {
  static const StatsCollector* collector = [] {
    return new StatsCollector(Universe().stream, Universe().registry.size());
  }();
  return *collector;
}

SimplePattern BenchPattern(PatternFamily family, int size) {
  PatternGenConfig pg;
  pg.family = family;
  pg.size = size;
  pg.window = 0.5;
  pg.seed = 33;
  return GeneratePattern(Universe(), pg)[0];
}

void BM_NfaEngineEventRate(benchmark::State& state) {
  SimplePattern pattern =
      BenchPattern(PatternFamily::kSequence, static_cast<int>(state.range(0)));
  CostFunction cost(Collector().CollectForPattern(pattern), pattern.window());
  EnginePlan plan = MakePlan("GREEDY", cost);
  for (auto _ : state) {
    RunResult result = Execute(pattern, plan, Universe().stream);
    benchmark::DoNotOptimize(result.matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Universe().stream.size()));
}
BENCHMARK(BM_NfaEngineEventRate)->Arg(3)->Arg(5);

void BM_TreeEngineEventRate(benchmark::State& state) {
  SimplePattern pattern =
      BenchPattern(PatternFamily::kSequence, static_cast<int>(state.range(0)));
  CostFunction cost(Collector().CollectForPattern(pattern), pattern.window());
  EnginePlan plan = MakePlan("DP-B", cost);
  for (auto _ : state) {
    RunResult result = Execute(pattern, plan, Universe().stream);
    benchmark::DoNotOptimize(result.matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(Universe().stream.size()));
}
BENCHMARK(BM_TreeEngineEventRate)->Arg(3)->Arg(5);

void BM_Optimizer(benchmark::State& state, const char* name, int n) {
  Rng rng(77);
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, rng.UniformReal(1, 15));
    for (int j = i + 1; j < n; ++j) {
      stats.set_sel(i, j, rng.Bernoulli(0.4) ? rng.UniformReal(0.05, 0.9) : 1);
    }
  }
  CostFunction cost(stats, 0.5);
  if (IsTreeAlgorithm(name)) {
    auto optimizer = MakeTreeOptimizer(name);
    for (auto _ : state) {
      benchmark::DoNotOptimize(optimizer->Optimize(cost));
    }
  } else {
    auto optimizer = MakeOrderOptimizer(name);
    for (auto _ : state) {
      benchmark::DoNotOptimize(optimizer->Optimize(cost));
    }
  }
}
BENCHMARK_CAPTURE(BM_Optimizer, greedy_n10, "GREEDY", 10);
BENCHMARK_CAPTURE(BM_Optimizer, ii_greedy_n10, "II-GREEDY", 10);
BENCHMARK_CAPTURE(BM_Optimizer, dp_ld_n14, "DP-LD", 14);
BENCHMARK_CAPTURE(BM_Optimizer, dp_b_n10, "DP-B", 10);
BENCHMARK_CAPTURE(BM_Optimizer, zstream_n10, "ZSTREAM", 10);
BENCHMARK_CAPTURE(BM_Optimizer, kbz_n10, "KBZ", 10);

void BM_OrderCostEvaluation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  PatternStats stats(n);
  for (int i = 0; i < n; ++i) {
    stats.set_rate(i, rng.UniformReal(1, 15));
    for (int j = i + 1; j < n; ++j) stats.set_sel(i, j, 0.3);
  }
  CostFunction cost(stats, 0.5);
  OrderPlan plan = OrderPlan::Identity(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.OrderCost(plan));
  }
}
BENCHMARK(BM_OrderCostEvaluation)->Arg(5)->Arg(10)->Arg(20);

}  // namespace
}  // namespace cepjoin

BENCHMARK_MAIN();
