// Figures 10 & 11: throughput and memory versus pattern size for
// conjunction (AND) patterns.

#include "harness.h"

int main() {
  using namespace cepjoin::bench;
  PrintHeader("Figures 10/11", "conjunction patterns: metrics vs pattern size");
  RunSizeSweepFigure("Fig 10/11", cepjoin::PatternFamily::kConjunction,
                     {3, 4, 5, 6, 7});
  return 0;
}
