// Ablation (Sec. 6.3): value of adaptivity under statistics drift. A
// stream whose rate profile inverts halfway is processed by (a) a static
// plan generated from the first half's statistics, (b) a static plan
// from full-stream statistics, and (c) the adaptive runtime re-planning
// on the fly. All three must report identical matches; the adaptive
// runtime should hold fewer partial matches than the stale plan.

#include "harness.h"

#include "adaptive/adaptive_runtime.h"
#include "common/rng.h"
#include "nfa/nfa_engine.h"

namespace cepjoin {
namespace bench {
namespace {

EventStream DriftingStream(const EventTypeRegistry& registry, double duration,
                           uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  double ts = 0.0;
  while (ts < duration) {
    ts += rng.UniformReal(0.002, 0.01);
    bool first_half = ts < duration / 2;
    double coin = rng.UniformReal(0, 1);
    TypeId type = coin < 0.06 ? (first_half ? 0 : 2)
                  : coin < 0.5 ? 1
                               : (first_half ? 2 : 0);
    Event e;
    e.type = type;
    e.ts = ts;
    e.attrs = {rng.UniformReal(-1, 1)};
    stream.Append(std::move(e));
  }
  (void)registry;
  return stream;
}

void Run() {
  EventTypeRegistry registry;
  registry.Register("A", {"v"});
  registry.Register("B", {"v"});
  registry.Register("C", {"v"});
  SimplePattern pattern = PatternBuilder(OperatorKind::kSeq, registry)
                              .Event("A", "a")
                              .Event("B", "b")
                              .Event("C", "c")
                              .Within(0.4)
                              .Build();
  double duration = 60.0 * Scale();
  EventStream stream = DriftingStream(registry, duration, 5150);

  // First-half statistics (what an offline planner would have seen).
  EventStream first_half;
  for (const EventPtr& e : stream.events()) {
    if (e->ts < duration / 2) {
      Event copy = *e;
      first_half.Append(std::move(copy));
    }
  }

  Table table({"configuration", "plan(s)", "matches", "peak partials",
               "throughput[ev/s]"});
  auto run_static = [&](const char* label, const EventStream& history) {
    StatsCollector collector(history, registry.size());
    CostFunction cost =
        MakeCostFunction(pattern, collector.CollectForPattern(pattern), 0.0);
    EnginePlan plan = MakePlan("GREEDY", cost).value();
    ExecuteOptions options;
    options.min_measure_seconds = 0.1;
    RunResult result = Execute(pattern, plan, stream, options);
    table.AddRow({label, plan.order.Describe(),
                  std::to_string(result.matches),
                  std::to_string(result.peak_instances),
                  FormatSi(result.throughput_eps)});
    return result.matches;
  };
  uint64_t stale = run_static("static (stale first-half stats)", first_half);
  uint64_t oracle = run_static("static (full-stream stats)", stream);

  CountingSink sink;
  AdaptiveOptions options;
  options.algorithm = "GREEDY";
  options.evaluation_interval = 2.0;
  options.stats_half_life = 4.0;
  AdaptiveRuntime adaptive(pattern, registry.size(), options, &sink);
  auto start = std::chrono::steady_clock::now();
  adaptive.ProcessStream(stream);
  adaptive.Finish();
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  table.AddRow({"adaptive (" + std::to_string(adaptive.reoptimization_count()) +
                    " re-optimizations)",
                adaptive.current_plan().order.Describe(),
                std::to_string(sink.count),
                std::to_string(adaptive.counters().peak_live_instances),
                FormatSi(static_cast<double>(stream.size()) / wall)});
  table.Print();
  std::printf("\nmatch counts must be identical (%llu / %llu / %llu); the "
              "adaptive runtime tracks the drift that strands the stale "
              "static plan with the wrong processing order.\n",
              static_cast<unsigned long long>(stale),
              static_cast<unsigned long long>(oracle),
              static_cast<unsigned long long>(sink.count));
}

}  // namespace
}  // namespace bench
}  // namespace cepjoin

int main() {
  cepjoin::bench::PrintHeader("Ablation",
                              "adaptivity under statistics drift (Sec. 6.3)");
  cepjoin::bench::Run();
  return 0;
}
