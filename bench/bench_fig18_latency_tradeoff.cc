// Figure 18: throughput vs detection latency for the hybrid cost model
// Cost = Cost_trpt + alpha · Cost_lat (Sec. 6.1), evaluated on the
// sequence pattern set for the six JQPG-based algorithms at
// alpha ∈ {0, 0.5, 1}.
//
// Adaptation note: with our scaled-down windows the raw throughput and
// latency cost components differ by orders of magnitude, so alpha is
// applied after normalizing the latency component to the throughput
// component of the EFREQ baseline plan (the paper describes alpha as a
// knob "adjusted to fit the required throughput-latency trade-off").

#include "harness.h"

namespace cepjoin {
namespace bench {
namespace {

void Run() {
  const BenchEnv& env = Env();
  std::vector<std::string> algorithms = {"GREEDY",  "II-RANDOM", "II-GREEDY",
                                         "DP-LD",   "ZSTREAM-ORD", "DP-B"};
  std::vector<double> alphas = {0.0, 0.5, 1.0};
  int patterns = std::max(10, PatternsPerPoint());

  Table table({"algorithm", "alpha", "throughput[ev/s]", "latency[us]"});
  for (const std::string& algorithm : algorithms) {
    for (double alpha : alphas) {
      RunAggregate aggregate;
      for (int k = 0; k < patterns; ++k) {
        PatternGenConfig pg;
        pg.family = PatternFamily::kSequence;
        pg.size = 5;
        pg.window = WindowFor(PatternFamily::kSequence);
        pg.seed = 500 + k;
        SimplePattern pattern = GeneratePattern(env.universe, pg)[0];
        PatternStats stats = env.collector.CollectForPattern(pattern);

        // Normalize: alpha=1 weighs latency as much as the baseline
        // plan's throughput cost.
        CostFunction base = MakeCostFunction(pattern, stats, 0.0);
        OrderPlan efreq = MakeOrderOptimizer("EFREQ").value()->Optimize(base);
        CostSpec probe_spec;
        probe_spec.latency_alpha = 1.0;
        probe_spec.latency_anchor = DefaultLatencyAnchor(pattern);
        CostFunction probe(stats, pattern.window(), probe_spec);
        double trpt0 = probe.OrderThroughputCost(efreq);
        double lat0 = probe.OrderLatencyCost(efreq);
        double effective_alpha =
            lat0 > 0.0 ? alpha * trpt0 / lat0 : alpha;

        CostFunction cost =
            MakeCostFunction(pattern, stats, effective_alpha);
        EnginePlan plan = MakePlan(algorithm, cost).value();
        aggregate.Add(Execute(pattern, plan, env.universe.stream));
      }
      aggregate.Finalize();
      table.AddRow({algorithm, FormatDouble(alpha, 1),
                    FormatSi(aggregate.throughput_eps),
                    FormatDouble(aggregate.mean_latency_seconds * 1e6, 2)});
    }
  }
  table.Print();
  std::printf("\nexpected shape: increasing alpha lowers detection latency "
              "for every algorithm, trading some throughput. (The paper "
              "found the tree methods on the best frontier; at our "
              "scaled-down windows the instance-walk overhead of the tree "
              "engine dominates — see EXPERIMENTS.md.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace cepjoin

int main() {
  cepjoin::bench::PrintHeader("Figure 18",
                              "throughput vs latency across alpha");
  cepjoin::bench::Run();
  return 0;
}
