// Ablation (Sec. 4.3): "when cross products are omitted, cheaper plans
// might be missed". KBZ is exact for acyclic predicate graphs but only
// searches cross-product-free orders; DP-LD searches the full left-deep
// space. On sparse predicate graphs with very cheap disconnected slots
// the gap widens — which is exactly why the paper treats polynomial
// cross-product-free algorithms as heuristics for CPG.
//
// Also reports SA (simulated annealing, our extension) to situate the
// randomized family between GREEDY and DP-LD.

#include "harness.h"

#include "common/rng.h"

namespace cepjoin {
namespace bench {
namespace {

void Run() {
  Rng rng(909090);
  int repeats = std::max(3, static_cast<int>(6 * Scale()));
  Table table({"graph", "n", "KBZ/DP-LD (mean)", "KBZ/DP-LD (max)",
               "GREEDY/DP-LD", "SA/DP-LD"});
  struct GraphKind {
    const char* label;
    double edge_probability;
  };
  for (const GraphKind& kind :
       {GraphKind{"chain", -1.0}, GraphKind{"star", -2.0},
        GraphKind{"sparse p=0.2", 0.2}, GraphKind{"dense p=0.8", 0.8}}) {
    for (int n : {5, 7, 9}) {
      double kbz_sum = 0.0;
      double kbz_max = 0.0;
      double greedy_sum = 0.0;
      double sa_sum = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        PatternStats stats(n);
        for (int i = 0; i < n; ++i) {
          stats.set_rate(i, rng.UniformReal(0.5, 15.0));
        }
        auto connect = [&](int i, int j) {
          stats.set_sel(i, j, rng.UniformReal(0.01, 0.6));
        };
        if (kind.edge_probability == -1.0) {
          for (int i = 0; i + 1 < n; ++i) connect(i, i + 1);
        } else if (kind.edge_probability == -2.0) {
          for (int i = 1; i < n; ++i) connect(0, i);
        } else {
          for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j) {
              if (rng.Bernoulli(kind.edge_probability)) connect(i, j);
            }
          }
        }
        CostFunction cost(stats, 1.0);
        double dp = cost.OrderCost(MakeOrderOptimizer("DP-LD").value()->Optimize(cost));
        double kbz = cost.OrderCost(MakeOrderOptimizer("KBZ").value()->Optimize(cost));
        double greedy =
            cost.OrderCost(MakeOrderOptimizer("GREEDY").value()->Optimize(cost));
        double sa =
            cost.OrderCost(MakeOrderOptimizer("SA", rep).value()->Optimize(cost));
        kbz_sum += kbz / dp;
        kbz_max = std::max(kbz_max, kbz / dp);
        greedy_sum += greedy / dp;
        sa_sum += sa / dp;
      }
      table.AddRow({kind.label, std::to_string(n),
                    FormatDouble(kbz_sum / repeats, 3),
                    FormatDouble(kbz_max, 3),
                    FormatDouble(greedy_sum / repeats, 3),
                    FormatDouble(sa_sum / repeats, 3)});
    }
  }
  table.Print();
  std::printf("\nratios are plan-cost relative to the DP-LD optimum "
              "(1.000 = optimal).\nexpected shape: KBZ is exact *within the "
              "cross-product-free space*, so any ratio above 1 quantifies "
              "plans reachable only via cross products (Sec. 4.3, [38]) — "
              "the gap grows with size and graph density; SA tracks the "
              "optimum closely.\n");
}

}  // namespace
}  // namespace bench
}  // namespace cepjoin

int main() {
  cepjoin::bench::PrintHeader(
      "Ablation", "cross-product-free planning (Sec. 4.3) & randomized SA");
  cepjoin::bench::Run();
  return 0;
}
