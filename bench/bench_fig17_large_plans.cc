// Figure 17: plan generation for large patterns (sizes 3–22), cost-only.
// (a) normalized plan cost: cost of the EFREQ plan divided by the cost of
//     the algorithm's plan (higher is better), averaged per size;
// (b) plan-generation time, growing exponentially for the DP algorithms.
//
// DP-B is O(3^n) (the paper measured >50 hours at n=22); we cap it at
// n<=13 by default so the binary terminates in seconds — the exponential
// trend is already unambiguous there.

#include "harness.h"

#include "common/rng.h"

namespace cepjoin {
namespace bench {
namespace {

void Run() {
  std::vector<int> sizes = {3, 5, 7, 9, 11, 13, 16, 19, 22};
  std::vector<std::string> algorithms = {"GREEDY", "II-GREEDY", "DP-LD",
                                         "KBZ",    "ZSTREAM",   "ZSTREAM-ORD",
                                         "DP-B"};
  int dpb_cap = 13;
  int dpld_cap = 22;

  // Patterns larger than the symbol universe need synthetic statistics;
  // mirror the paper by sampling rates/selectivities from the measured
  // stock distributions.
  Rng rng(424242);
  Table cost_table([&] {
    std::vector<std::string> headers = {"size"};
    for (const auto& a : algorithms) headers.push_back(a);
    return headers;
  }());
  Table time_table([&] {
    std::vector<std::string> headers = {"size"};
    for (const auto& a : algorithms) headers.push_back(a + "[ms]");
    return headers;
  }());

  int repeats = std::max(1, static_cast<int>(2 * Scale()));
  for (int size : sizes) {
    std::vector<double> norm_sum(algorithms.size(), 0.0);
    std::vector<double> time_sum(algorithms.size(), 0.0);
    std::vector<int> counted(algorithms.size(), 0);
    for (int rep = 0; rep < repeats; ++rep) {
      // Heterogeneous statistics in the paper's measured ranges: rates
      // spanning 1-45 ev/s (log-uniform) and predicate selectivities down
      // to 0.002 on ~a third of the pairs, plus the ts-order 0.5 factor.
      PatternStats stats(size);
      for (int i = 0; i < size; ++i) {
        stats.set_rate(i, std::exp(rng.UniformReal(std::log(1.0),
                                                   std::log(45.0))));
        for (int j = i + 1; j < size; ++j) {
          double sel = 0.5;
          if (rng.Bernoulli(0.35)) {
            sel *= std::exp(
                rng.UniformReal(std::log(0.002), std::log(0.9)));
          }
          stats.set_sel(i, j, sel);
        }
      }
      CostFunction cost(stats, 1.0);
      // Normalize against the worst algorithm (EFREQ) within each plan
      // class. Tree costs additionally subtract the plan-independent
      // leaf-sum term so the ratio measures the plan-dependent
      // (internal-node PM) component — at the paper's W·r scale the leaf
      // terms are negligible and this matches their normalization.
      double leaf_sum = 0.0;
      for (int i = 0; i < size; ++i) leaf_sum += cost.LeafCost(i);
      OrderPlan efreq_plan = MakeOrderOptimizer("EFREQ").value()->Optimize(cost);
      double efreq_order = cost.OrderCost(efreq_plan);
      double efreq_tree =
          cost.TreeCost(TreePlan::LeftDeep(efreq_plan)) - leaf_sum;
      for (size_t a = 0; a < algorithms.size(); ++a) {
        const std::string& name = algorithms[a];
        if (name == "DP-B" && size > dpb_cap) continue;
        if ((name == "DP-LD") && size > dpld_cap) continue;
        EnginePlan plan = MakePlan(name, cost).value();
        double ratio =
            plan.kind == EnginePlan::Kind::kOrder
                ? efreq_order / plan.cost
                : efreq_tree / std::max(plan.cost - leaf_sum, 1e-12);
        norm_sum[a] += ratio;
        time_sum[a] += plan.generation_seconds * 1e3;
        ++counted[a];
      }
    }
    std::vector<std::string> cost_row = {std::to_string(size)};
    std::vector<std::string> time_row = {std::to_string(size)};
    for (size_t a = 0; a < algorithms.size(); ++a) {
      if (counted[a] == 0) {
        cost_row.push_back("-");
        time_row.push_back("-");
      } else {
        cost_row.push_back(FormatDouble(norm_sum[a] / counted[a], 2));
        time_row.push_back(FormatDouble(time_sum[a] / counted[a], 3));
      }
    }
    cost_table.AddRow(cost_row);
    time_table.AddRow(time_row);
  }
  std::printf("\n(a) normalized plan cost vs EFREQ (higher is better; '-' ="
              " capped):\n");
  cost_table.Print();
  std::printf("\n(b) plan generation time in milliseconds (log-scale trend;"
              " DP grows exponentially):\n");
  time_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace cepjoin

int main() {
  cepjoin::bench::PrintHeader("Figure 17",
                              "large-pattern plan quality & generation time");
  cepjoin::bench::Run();
  return 0;
}
