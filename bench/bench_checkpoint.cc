// Durability bench: what a checkpoint costs and what it does NOT cost.
//
//   capture MB/s    — CepService::CaptureCheckpointBytes over a service
//                     with hot keyed+unkeyed state (the ingest-thread
//                     stall is exactly this serialization);
//   restore MB/s    — RestoreFrom the published checkpoint into a fresh
//                     service (crash-recovery time per byte);
//   stall p99       — per-cut capture stall across a pump loop that
//                     checkpoints every chunk;
//   disabled ratio  — pump throughput with a CheckpointCoordinator
//                     attached but policy-disabled (its per-chunk
//                     MaybeCheckpoint always declines) vs a plain pump.
//                     Durability compiled in but switched off must keep
//                     >= 98% of the plain rate; with
//                     CEPJOIN_BENCH_ASSERT=1 (Release) a miss fails the
//                     process after re-measure passes, same protocol as
//                     bench_retraction.
//
// Usage: bench_checkpoint [--json <path>]

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/cep_service.h"
#include "durable/checkpoint_coordinator.h"
#include "durable/snapshot_io.h"
#include "event/stream_source.h"
#include "harness.h"
#include "workload/keyed_generator.h"

namespace cepjoin {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kPumpChunk = 512;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

using Workload = KeyedWorkload;

Workload MakeWorkload() {
  double scale = std::max(0.2, bench::Scale());
  return MakeKeyedWorkload(/*num_partitions=*/8, /*duration=*/8.0 * scale,
                           /*seed=*/41);
}

struct Session {
  std::unique_ptr<CepService> service;
  CountingSink keyed_sink;
  CountingSink unkeyed_sink;
};

Session MakeSession(const Workload& w) {
  Session s;
  ServiceOptions options;
  options.history = &w.stream;
  options.num_types = w.registry.size();
  options.num_threads = 1;  // stall/throughput on one thread, no queues
  s.service = CepService::Create(options).value();
  CEPJOIN_CHECK_OK(s.service
                       ->Register(QuerySpec::Simple(w.pattern)
                                      .WithName("keyed")
                                      .Keyed()
                                      .WithSink(&s.keyed_sink))
                       .status());
  CEPJOIN_CHECK_OK(s.service
                       ->Register(QuerySpec::Simple(w.pattern)
                                      .WithName("unkeyed")
                                      .WithSink(&s.unkeyed_sink))
                       .status());
  CEPJOIN_CHECK_OK(s.service->AttachSource(
      std::make_unique<EventStreamSource>(&w.stream)));
  return s;
}

/// Pumps everything, timing only the pump. Returns events/second.
double TimedPump(Session* s) {
  Clock::time_point start = Clock::now();
  uint64_t fed = 0;
  while (true) {
    auto chunk = s->service->PumpAttachedSources(kPumpChunk);
    CEPJOIN_CHECK_OK(chunk.status());
    if (chunk.value() == 0) break;
    fed += chunk.value();
  }
  return static_cast<double>(fed) / Seconds(start);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(idx, values.size() - 1)];
}

double Median(std::vector<double> values) { return Percentile(values, 0.5); }

bool RunBench(const std::string& json_path) {
  Workload w = MakeWorkload();
  const std::string dir =
      "/tmp/cepjoin_bench_checkpoint_" + std::to_string(::getpid());
  bool ok = true;

  // ---- capture / restore throughput ---------------------------------
  Session hot = MakeSession(w);
  {
    auto fed = hot.service->PumpAttachedSources(w.stream.size() / 2);
    CEPJOIN_CHECK_OK(fed.status());
  }
  std::string payload;
  double best_capture_s = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 5; ++round) {
    Clock::time_point start = Clock::now();
    CEPJOIN_CHECK_OK(hot.service->CaptureCheckpointBytes(&payload));
    best_capture_s = std::min(best_capture_s, Seconds(start));
  }
  const double mb = static_cast<double>(payload.size()) / (1024.0 * 1024.0);
  const double capture_mbps = mb / best_capture_s;
  CEPJOIN_CHECK_OK(hot.service->CheckpointTo(dir));

  double best_restore_s = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 5; ++round) {
    Session cold = MakeSession(w);
    Clock::time_point start = Clock::now();
    CEPJOIN_CHECK_OK(cold.service->RestoreFrom(dir).status());
    best_restore_s = std::min(best_restore_s, Seconds(start));
  }
  const double restore_mbps = mb / best_restore_s;

  // ---- checkpoint stall distribution --------------------------------
  std::vector<double> stalls;
  {
    Session s = MakeSession(w);
    while (true) {
      auto chunk = s.service->PumpAttachedSources(kPumpChunk);
      CEPJOIN_CHECK_OK(chunk.status());
      if (chunk.value() == 0) break;
      Clock::time_point start = Clock::now();
      std::string cut;
      CEPJOIN_CHECK_OK(s.service->CaptureCheckpointBytes(&cut));
      stalls.push_back(Seconds(start));
    }
  }
  const double stall_p99_ms = Percentile(stalls, 0.99) * 1e3;
  const double stall_p50_ms = Percentile(stalls, 0.50) * 1e3;

  // ---- disabled-overhead self-check ---------------------------------
  // Paired rounds (plain, then coordinator-attached-but-declining) with
  // a median-of-pair-ratios score, the bench_retraction protocol: pair
  // locality cancels load drift, the median discards descheduled pairs.
  auto plain_round = [&] {
    Session s = MakeSession(w);
    return TimedPump(&s);
  };
  auto disabled_round = [&] {
    Session s = MakeSession(w);
    CheckpointOptions copts;
    copts.dir = dir + "_disabled";
    // A policy floor no finite watermark reaches: every MaybeCheckpoint
    // is a declined policy check, the disabled steady state.
    copts.min_watermark_advance = std::numeric_limits<double>::infinity();
    CheckpointCoordinator coordinator(s.service.get(), copts);
    CEPJOIN_CHECK_OK(coordinator.Start());
    Clock::time_point start = Clock::now();
    uint64_t fed = 0;
    double watermark = 0.0;
    while (true) {
      auto chunk = s.service->PumpAttachedSources(kPumpChunk);
      CEPJOIN_CHECK_OK(chunk.status());
      if (chunk.value() == 0) break;
      fed += chunk.value();
      watermark += 1.0;
      auto cut = coordinator.MaybeCheckpoint(watermark);
      CEPJOIN_CHECK_OK(cut.status());
    }
    double rate = static_cast<double>(fed) / Seconds(start);
    CEPJOIN_CHECK_OK(coordinator.Stop());
    return rate;
  };

  auto measure_ratio = [&](int rounds) {
    std::vector<double> ratios;
    plain_round();  // warm-up pair
    disabled_round();
    for (int i = 0; i < rounds; ++i) {
      double plain = plain_round();
      double disabled = disabled_round();
      ratios.push_back(disabled / plain);
    }
    return ratios;
  };
  std::vector<double> ratios = measure_ratio(6);
  const double plain_rate = plain_round();
  double disabled_ratio = Median(ratios);
  for (int attempt = 0; attempt < 2 && disabled_ratio < 0.98; ++attempt) {
    disabled_ratio = Median(measure_ratio(12));
  }

  std::printf(
      "checkpoint bench: %zu-event keyed+unkeyed delta-free workload, "
      "payload %.2f MB\n\n",
      w.stream.size(), mb);
  std::printf("  capture            %10.1f MB/s\n", capture_mbps);
  std::printf("  restore            %10.1f MB/s\n", restore_mbps);
  std::printf("  stall p50 / p99    %7.3f / %.3f ms (%zu cuts)\n",
              stall_p50_ms, stall_p99_ms, stalls.size());
  std::printf("  plain pump         %10.3g ev/s\n", plain_rate);
  std::printf("  disabled ratio     %10.3f (budget >= 0.98)\n",
              disabled_ratio);

  bench::RecordJson("checkpoint", "capture_mb_per_sec", capture_mbps, "MB/s");
  bench::RecordJson("checkpoint", "restore_mb_per_sec", restore_mbps, "MB/s");
  bench::RecordJson("checkpoint", "payload_bytes",
                    static_cast<double>(payload.size()), "bytes");
  bench::RecordJson("checkpoint", "stall_p99_ms", stall_p99_ms, "ms");
  bench::RecordJson("checkpoint", "stall_p50_ms", stall_p50_ms, "ms");
  bench::RecordJson("checkpoint", "disabled_overhead_ratio", disabled_ratio,
                    "x");

  if (disabled_ratio < 0.98) {
    std::fprintf(stderr,
                 "CHECKPOINT OVERHEAD REGRESSION: pump throughput with "
                 "checkpointing attached-but-disabled is %.1f%% of the "
                 "plain pump (budget: >= 98%%)\n",
                 100.0 * disabled_ratio);
#ifdef NDEBUG
    const char* assert_env = std::getenv("CEPJOIN_BENCH_ASSERT");
    if (assert_env != nullptr && assert_env[0] == '1') ok = false;
#endif
  }
  if (!bench::WriteBenchJson(json_path)) ok = false;
  return ok;
}

}  // namespace
}  // namespace cepjoin

int main(int argc, char** argv) {
  return cepjoin::RunBench(cepjoin::bench::JsonPathFromArgs(argc, argv)) ? 0
                                                                         : 1;
}
