// The paper's introductory example (Sec. 1): four traffic cameras A, B,
// C, D report vehicle sightings; camera D transmits one frame for every
// ten the others send. Detect SEQ(A, B, C, D) on the same vehicle.
//
// The point of the example: the trivial NFA order creates a partial
// match per A-sighting, while a cost-based plan waits for the rare D
// first ("Lazy NFA") — same matches, far fewer partial matches.

#include <cstdio>

#include "api/cep_runtime.h"
#include "common/rng.h"
#include "metrics/runner.h"

using namespace cepjoin;

int main() {
  EventTypeRegistry registry;
  for (const char* name : {"CamA", "CamB", "CamC", "CamD"}) {
    registry.Register(name, {"vehicleID"});
  }

  // Simulate camera readings: cameras A, B, C at 10 frames/s, D at 1.
  Rng rng(7);
  EventStream stream;
  double ts = 0.0;
  int vehicles = 40;
  while (ts < 120.0) {
    ts += 0.02;
    double coin = rng.UniformReal(0.0, 31.0);
    TypeId camera = coin < 10 ? 0 : coin < 20 ? 1 : coin < 30 ? 2 : 3;
    Event e;
    e.type = camera;
    e.ts = ts;
    e.attrs = {static_cast<double>(rng.UniformInt(0, vehicles - 1))};
    stream.Append(e);
  }

  SimplePattern pattern =
      PatternBuilder(OperatorKind::kSeq, registry)
          .Event("CamA", "a")
          .Event("CamB", "b")
          .Event("CamC", "c")
          .Event("CamD", "d")
          .Where("a", "vehicleID", CmpOp::kEq, "b", "vehicleID")
          .Where("b", "vehicleID", CmpOp::kEq, "c", "vehicleID")
          .Where("c", "vehicleID", CmpOp::kEq, "d", "vehicleID")
          .Within(8.0)
          .Build();
  std::printf("pattern: %s\n\n", pattern.Describe(&registry).c_str());

  StatsCollector collector(stream, registry.size());
  PatternStats stats = collector.CollectForPattern(pattern);

  for (const char* algorithm : {"TRIVIAL", "GREEDY", "DP-LD", "DP-B"}) {
    CostFunction cost = MakeCostFunction(pattern, stats, 0.0);
    EnginePlan plan = MakePlan(algorithm, cost).value();
    RunResult result = Execute(pattern, plan, stream);
    std::printf("%-8s plan %-24s matches=%llu peak partials=%zu "
                "throughput=%.0f ev/s\n",
                algorithm, plan.Describe().c_str(),
                static_cast<unsigned long long>(result.matches),
                result.peak_instances, result.throughput_eps);
  }
  std::printf("\nNote how every plan finds the same matches, and how the "
              "out-of-order plans\n(which start with the rare camera D) "
              "hold far fewer partial matches.\n");
  return 0;
}
