// The traffic-camera example (Sec. 1) scaled out: sightings are keyed by
// vehicle (one partition per vehicle), so SEQ(A, B, C, D) matching is
// partition-local and the stream can be sharded across worker threads.
// Each vehicle gets its own cost-based plan; the sharded runtime's
// deterministic merge returns exactly the match set of the
// single-threaded per-partition run, at any thread count.

#include <chrono>
#include <cstdio>
#include <thread>

#include "api/keyed_runtime.h"
#include "common/rng.h"

using namespace cepjoin;

namespace {

EventStream SimulateCameras(int vehicles, double duration) {
  // Cameras A, B, C at 10 frames/s, D at 1 (the paper's rare camera).
  Rng rng(7);
  EventStream stream;
  double ts = 0.0;
  while (ts < duration) {
    ts += 0.002;
    double coin = rng.UniformReal(0.0, 31.0);
    TypeId camera = coin < 10 ? 0 : coin < 20 ? 1 : coin < 30 ? 2 : 3;
    uint32_t vehicle =
        static_cast<uint32_t>(rng.UniformInt(0, vehicles - 1));
    Event e;
    e.type = camera;
    e.ts = ts;
    e.partition = vehicle;  // partition key: matches are per-vehicle
    e.attrs = {static_cast<double>(vehicle)};
    stream.Append(std::move(e));
  }
  return stream;
}

}  // namespace

int main() {
  EventTypeRegistry registry;
  for (const char* name : {"CamA", "CamB", "CamC", "CamD"}) {
    registry.Register(name, {"vehicleID"});
  }
  SimplePattern pattern = PatternBuilder(OperatorKind::kSeq, registry)
                              .Event("CamA", "a")
                              .Event("CamB", "b")
                              .Event("CamC", "c")
                              .Event("CamD", "d")
                              .Within(2.0)
                              .Build();
  // No join predicates needed: partitioning by vehicle already scopes
  // matching to one vehicle, replacing the four-way vehicleID equality.
  EventStream stream = SimulateCameras(/*vehicles=*/128, /*duration=*/60.0);
  std::printf("pattern: %s\n", pattern.Describe(&registry).c_str());
  std::printf("stream:  %zu sightings of %d vehicles\n\n", stream.size(),
              128);

  size_t hw = std::thread::hardware_concurrency();
  uint64_t single_matches = 0;
  double single_wall = 0.0;
  for (size_t threads : {1u, 2u, 4u}) {
    RuntimeOptions options;
    options.algorithm = "GREEDY";
    options.num_threads = threads;
    CountingSink sink;
    KeyedCepRuntime runtime(pattern, stream, registry.size(), options, &sink);
    auto start = std::chrono::steady_clock::now();
    runtime.ProcessStream(stream);
    runtime.Finish();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (threads == 1) {
      single_matches = sink.count;
      single_wall = wall;
    }
    std::printf(
        "threads=%zu (%s)  matches=%llu  wall=%.3fs  speedup=%.2fx  "
        "partitions=%zu\n",
        threads, runtime.sharded() ? "sharded" : "single",
        static_cast<unsigned long long>(sink.count), wall,
        single_wall > 0 ? single_wall / wall : 1.0,
        runtime.num_partitions().value());
    if (sink.count != single_matches) {
      std::printf("ERROR: match count diverged from single-threaded run\n");
      return 1;
    }
  }
  std::printf(
      "\nSame matches at every thread count; speedup tracks physical cores "
      "(this machine: %zu).\n",
      hw);
  return 0;
}
