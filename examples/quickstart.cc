// Quickstart: define a pattern, collect statistics, let a join-query
// optimizer pick the evaluation plan, and detect matches on a stream.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "api/cep_runtime.h"
#include "workload/stock_generator.h"

using namespace cepjoin;

int main() {
  // 1. A stream to monitor. Here: the synthetic stock feed (one event
  //    type per symbol with attributes {price, difference}).
  StockGeneratorConfig gen;
  gen.num_symbols = 8;
  gen.duration_seconds = 30.0;
  StockUniverse universe = GenerateStockStream(gen);

  // 2. The pattern. The paper's running example: detect three stocks
  //    whose price changes line up inside a short window.
  SimplePattern pattern =
      PatternBuilder(OperatorKind::kSeq, universe.registry)
          .Event("STK000", "m")
          .Event("STK001", "g")
          .Event("STK002", "i")
          .Where("m", "difference", CmpOp::kLt, "g", "difference")
          .Within(1.0)
          .Build();
  std::printf("pattern: %s\n", pattern.Describe(&universe.registry).c_str());

  // 3. Statistics pass (arrival rates + predicate selectivities), exactly
  //    like the paper's preprocessing stage.
  StatsCollector collector(universe.stream, universe.registry.size());
  PatternStats stats = collector.CollectForPattern(pattern);
  std::printf("statistics:\n%s", stats.Describe().c_str());

  // 4. Plan with a JQPG algorithm and run.
  CollectingSink sink;
  RuntimeOptions options;
  options.algorithm = "DP-LD";  // Selinger dynamic programming
  CepRuntime runtime(pattern, stats, options, &sink);
  std::printf("plan: %s", runtime.DescribePlans().c_str());

  runtime.ProcessStream(universe.stream);
  runtime.Finish();

  std::printf("events processed: %llu\n",
              static_cast<unsigned long long>(
                  runtime.counters().events_processed));
  std::printf("matches found:    %zu\n", sink.matches.size());
  std::printf("peak partial matches: %zu\n",
              runtime.counters().peak_live_instances);
  if (!sink.matches.empty()) {
    const Match& m = sink.matches.front();
    std::printf("first match: m@%.3fs g@%.3fs i@%.3fs\n",
                m.slots[0][0]->ts, m.slots[1][0]->ts, m.slots[2][0]->ts);
  }
  return 0;
}
