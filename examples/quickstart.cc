// Quickstart: define a pattern, let a join-query optimizer pick the
// evaluation plan, and detect matches on a stream — through the session
// API: a CepService hosts the query, QuerySpec describes it, and bad
// specs come back as Status errors instead of aborting.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "api/cep_service.h"
#include "workload/stock_generator.h"

using namespace cepjoin;

int main() {
  // 1. A stream to monitor. Here: the synthetic stock feed (one event
  //    type per symbol with attributes {price, difference}).
  StockGeneratorConfig gen;
  gen.num_symbols = 8;
  gen.duration_seconds = 30.0;
  StockUniverse universe = GenerateStockStream(gen);

  // 2. The pattern. The paper's running example: detect three stocks
  //    whose price changes line up inside a short window.
  SimplePattern pattern =
      PatternBuilder(OperatorKind::kSeq, universe.registry)
          .Event("STK000", "m")
          .Event("STK001", "g")
          .Event("STK002", "i")
          .Where("m", "difference", CmpOp::kLt, "g", "difference")
          .Within(1.0)
          .Build();
  std::printf("pattern: %s\n", pattern.Describe(&universe.registry).c_str());

  // 3. A service session. The history stream doubles as the statistics
  //    pass (arrival rates + predicate selectivities), exactly like the
  //    paper's preprocessing stage.
  ServiceOptions options;
  options.history = &universe.stream;
  options.num_types = universe.registry.size();
  auto service_or = CepService::Create(options);
  if (!service_or.ok()) {
    std::printf("service error: %s\n", service_or.status().ToString().c_str());
    return 1;
  }
  auto service = std::move(service_or).value();

  // 4. Describe the query declaratively and register it. Registration
  //    validates the spec: a typo'd algorithm name, a missing sink, or
  //    a pattern/registry mismatch is a returned error, not an abort.
  CollectingSink sink;
  auto handle = service->Register(QuerySpec::Simple(pattern)
                                      .WithName("price-dip-chain")
                                      .WithAlgorithm("DP-LD")
                                      .WithSink(&sink));
  if (!handle.ok()) {
    std::printf("registration error: %s\n",
                handle.status().ToString().c_str());
    return 1;
  }
  for (const EnginePlan& plan : handle->plans().value()) {
    std::printf("plan: %s (cost %g)\n", plan.Describe().c_str(), plan.cost);
  }

  // A bad spec, for contrast — the service keeps running:
  auto typo = service->Register(QuerySpec::Simple(pattern)
                                    .WithAlgorithm("DP-LDD")
                                    .WithSink(&sink));
  std::printf("typo'd algorithm -> %s\n", typo.status().ToString().c_str());

  // 5. Feed the stream and finish the session.
  service->ProcessStream(universe.stream);
  service->Finish();

  EngineCounters counters = handle->counters().value();
  std::printf("events processed: %llu\n",
              static_cast<unsigned long long>(counters.events_processed));
  std::printf("matches found:    %zu\n", sink.matches.size());
  std::printf("peak partial matches: %zu\n", counters.peak_live_instances);
  if (!sink.matches.empty()) {
    const Match& m = sink.matches.front();
    std::printf("first match: m@%.3fs g@%.3fs i@%.3fs\n",
                m.slots[0][0]->ts, m.slots[1][0]->ts, m.slots[2][0]->ts);
  }
  return 0;
}
