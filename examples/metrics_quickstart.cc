// Metrics quickstart: one keyed query over an async-ingested feed, then
// the full observability surface in both export formats — latency
// quantiles (p50/p99 ingest-to-match and detection), exact memory
// gauges, watermark lags, per-shard throughput, and the Prometheus /
// JSON renderings a scrape endpoint or dashboard would serve.
//
//   $ ./examples/metrics_quickstart
//
// Built with -DCEPJOIN_DETAILED_METRICS=ON the snapshot additionally
// carries the cep_stage_seconds drill-down histograms; this program
// exits nonzero if that build flag is set but the stage timers are
// missing, so CI can assert the drill-down path end to end.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/cep_service.h"
#include "obs/export.h"
#include "obs/pipeline_metrics.h"
#include "workload/keyed_generator.h"

using namespace cepjoin;

int main() {
  const int kPartitions = 16;
  KeyedWorkload history = MakeKeyedWorkload(kPartitions, 8.0, 7);
  KeyedWorkload live = MakeKeyedWorkload(kPartitions, 8.0, 41);

  ServiceOptions options;
  options.history = &history.stream;
  options.num_types = history.registry.size();
  options.num_threads = 2;         // sharded execution, per-shard metrics
  options.num_ingest_threads = 2;  // per-source watermark gauges
  // options.enable_metrics defaults to true; the instruments are striped
  // relaxed atomics, cheap enough to leave on in production.
  auto service = CepService::Create(options).value();

  CountingSink sink;
  auto handle = service->Register(QuerySpec::Simple(history.pattern)
                                      .Keyed()
                                      .WithName("quickstart")
                                      .WithSink(&sink));
  if (!handle.ok()) {
    std::printf("register failed: %s\n", handle.status().ToString().c_str());
    return 1;
  }

  // The live feed arrives as two interleaved slices merged in timestamp
  // order — each slice gets its own watermark/lag gauge.
  std::vector<std::unique_ptr<StreamSource>> sources;
  for (size_t i = 0; i < 2; ++i) {
    sources.push_back(std::make_unique<EventStreamSource>(&live.stream, i, 2));
  }
  IngestResult ingested = service->ProcessSourceAsync(std::move(sources));
  if (!ingested.ok) {
    std::printf("ingest failed: %s\n", ingested.error.c_str());
    return 1;
  }
  service->Finish();

  // One coherent snapshot of every instrument. Callable mid-stream too;
  // here the workers have quiesced so the totals are exact.
  MetricsSnapshot snap = service->MetricsSnapshot();

  const MetricLabels query_labels = {{"name", "quickstart"},
                                     {"query", std::to_string(handle->id())}};
  std::printf("== headline numbers ==\n");
  std::printf("events ingested   %.0f\n",
              snap.Value(metric_names::kIngestEvents));
  std::printf("matches           %.0f (sink saw %llu)\n",
              snap.Value(metric_names::kQueryMatches, query_labels),
              static_cast<unsigned long long>(sink.count));
  const MetricPoint* ingest_to_match =
      snap.Find(metric_names::kIngestToMatchSeconds, query_labels);
  const MetricPoint* detection =
      snap.Find(metric_names::kDetectionSeconds, query_labels);
  if (ingest_to_match != nullptr && ingest_to_match->histogram.count > 0) {
    std::printf("ingest-to-match   p50 %.1f us, p99 %.1f us (%llu samples)\n",
                ingest_to_match->histogram.Quantile(0.5) * 1e6,
                ingest_to_match->histogram.Quantile(0.99) * 1e6,
                static_cast<unsigned long long>(
                    ingest_to_match->histogram.count));
  }
  if (detection != nullptr && detection->histogram.count > 0) {
    std::printf("detection latency p50 %.1f us, p99 %.1f us\n",
                detection->histogram.Quantile(0.5) * 1e6,
                detection->histogram.Quantile(0.99) * 1e6);
  }
  std::printf("dominant last position %.0f (SEQ(A,B,C): C closes matches)\n",
              snap.Value(metric_names::kLastPosition, query_labels, -1.0));
  for (size_t i = 0; i < 2; ++i) {
    MetricLabels source_labels = {{"source", std::to_string(i)}};
    std::printf("source %zu watermark %.2fs (lag %.3fs)\n", i,
                snap.Value(metric_names::kSourceWatermark, source_labels),
                snap.Value(metric_names::kSourceWatermarkLag, source_labels));
  }

  // The same snapshot, rendered for machines. A metrics endpoint would
  // serve ToPrometheusText on /metrics; the JSON form follows the bench
  // harness conventions for offline diffing.
  const std::string prometheus = ToPrometheusText(snap);
  std::printf("\n== prometheus exposition (first lines) ==\n");
  size_t shown = 0, pos = 0;
  while (shown < 12 && pos < prometheus.size()) {
    size_t end = prometheus.find('\n', pos);
    if (end == std::string::npos) end = prometheus.size();
    std::printf("%s\n", prometheus.substr(pos, end - pos).c_str());
    pos = end + 1;
    ++shown;
  }
  std::printf("... (%zu bytes total; ToJson(snap) is %zu bytes)\n",
              prometheus.size(), ToJson(snap).size());

#ifdef CEPJOIN_DETAILED_METRICS
  // Drill-down build: the compiled-in stage timers must have produced
  // cep_stage_seconds histograms. CI runs this binary to assert it.
  bool saw_stage = false;
  for (const MetricPoint& p : snap.points) {
    if (p.name == metric_names::kStageSeconds && p.histogram.count > 0) {
      if (!saw_stage) std::printf("\n== stage drill-down ==\n");
      saw_stage = true;
      std::string stage = "?";
      for (const auto& [k, v] : p.labels) {
        if (k == "stage") stage = v;
      }
      std::printf("%-28s p50 %.2f us  (%llu samples)\n", stage.c_str(),
                  p.histogram.Quantile(0.5) * 1e6,
                  static_cast<unsigned long long>(p.histogram.count));
    }
  }
  if (!saw_stage) {
    std::printf("ERROR: CEPJOIN_DETAILED_METRICS build produced no "
                "cep_stage_seconds samples\n");
    return 1;
  }
#endif

  // Sanity the quickstart rests on: the counter view and the sink agree.
  if (snap.Value(metric_names::kQueryMatches, query_labels) !=
      static_cast<double>(sink.count)) {
    std::printf("ERROR: metrics and sink disagree on the match count\n");
    return 1;
  }
  return 0;
}
