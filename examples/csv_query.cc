// CSV query runner: evaluate a SASE-style pattern (Sec. 2.1 syntax) over
// a CSV event stream — the adoption path for external datasets like the
// paper's NASDAQ file.
//
//   ./examples/csv_query data.csv PATTERN [ALGORITHM]
//   with PATTERN like:
//     "PATTERN SEQ(MSFT m, GOOG g)
//      WHERE m.difference < g.difference WITHIN 20 minutes"
//
// Run without arguments for a built-in demo on an embedded CSV snippet.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/cep_runtime.h"
#include "event/csv_loader.h"
#include "pattern/parser.h"

using namespace cepjoin;

namespace {

const char kDemoCsv[] =
    "type,ts,partition,price,difference\n"
    "MSFT,0.0,0,100.0,0.0\n"
    "GOOG,0.5,0,700.0,0.0\n"
    "MSFT,1.0,0,99.0,-1.0\n"
    "GOOG,1.5,0,702.5,2.5\n"
    "INTC,2.0,0,50.0,0.4\n"
    "MSFT,2.5,0,100.5,1.5\n"
    "GOOG,3.0,0,701.0,-1.5\n"
    "INTC,3.5,0,50.9,0.9\n";

const char kDemoPattern[] =
    "PATTERN SEQ(MSFT m, GOOG g, INTC i) "
    "WHERE m.difference < g.difference "
    "WITHIN 20 minutes";

}  // namespace

int main(int argc, char** argv) {
  EventTypeRegistry registry;
  CsvLoadResult loaded;
  std::string pattern_text;
  if (argc >= 3) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    loaded = LoadCsvStream(file, &registry);
    pattern_text = argv[2];
  } else {
    std::printf("(no arguments: running the built-in demo)\n\n");
    loaded = LoadCsvStreamFromString(kDemoCsv, &registry);
    pattern_text = kDemoPattern;
  }
  if (!loaded.ok) {
    std::fprintf(stderr, "CSV error at line %zu: %s\n", loaded.error_line,
                 loaded.error.c_str());
    return 1;
  }
  std::printf("stream: %zu events, %zu event types, %.3fs span\n",
              loaded.stream.size(), registry.size(),
              loaded.stream.Duration());

  ParseResult parsed = ParsePattern(pattern_text, registry);
  if (!parsed.ok) {
    std::fprintf(stderr, "pattern error at offset %zu: %s\n",
                 parsed.error_offset, parsed.error.c_str());
    return 1;
  }

  StatsCollector collector(loaded.stream, registry.size());
  RuntimeOptions options;
  options.algorithm = argc >= 4 ? argv[3] : "GREEDY";
  CollectingSink sink;
  CepRuntime runtime(parsed.pattern, collector, options, &sink);
  std::printf("plan(s):\n%s", runtime.DescribePlans().c_str());

  runtime.ProcessStream(loaded.stream);
  runtime.Finish();

  std::printf("matches: %zu\n", sink.matches.size());
  size_t shown = 0;
  for (const Match& m : sink.matches) {
    if (++shown > 10) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  match:");
    for (const auto& slot : m.slots) {
      for (const EventPtr& e : slot) {
        std::printf(" %s@%.3f", registry.Info(e->type).name.c_str(), e->ts);
      }
    }
    std::printf("\n");
  }
  return 0;
}
