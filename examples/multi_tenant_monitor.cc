// Multi-tenant monitoring: several tenants register their own pattern
// queries — different shapes, windows, plan algorithms, keyed and
// unkeyed — against ONE CepService fed by ONE shared async-ingest feed.
// The service routes the stream once; every tenant's matches arrive on
// its own sink with its own counters and plans, and a bad registration
// is a returned error the service shrugs off.
//
//   $ ./examples/multi_tenant_monitor

#include <cstdio>
#include <memory>
#include <vector>

#include "api/cep_service.h"
#include "workload/keyed_generator.h"

using namespace cepjoin;

int main() {
  // The traffic substrate: keyed events (one partition per monitored
  // entity — a camera, a ticker symbol group) of three types A/B/C with
  // one attribute v. Yesterday's recording supplies the statistics the
  // planners consume; today's live feed is a different seed.
  const int kPartitions = 32;
  KeyedWorkload history = MakeKeyedWorkload(kPartitions, 12.0, 7);
  KeyedWorkload live = MakeKeyedWorkload(kPartitions, 12.0, 99);

  ServiceOptions options;
  options.history = &history.stream;
  options.num_types = history.registry.size();
  options.num_threads = 4;        // shared sharded execution
  options.num_ingest_threads = 2; // parsing threads for the async feed
  auto service = CepService::Create(options).value();

  // Tenant specs: each gets its own pattern, algorithm, and sink.
  struct Tenant {
    const char* name;
    QueryHandle handle;
    CollectingSink sink;
  };
  std::vector<std::unique_ptr<Tenant>> tenants;

  auto add = [&](const char* name, QuerySpec spec) {
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    auto handle = service->Register(spec.WithName(name)
                                        .WithSink(&tenant->sink));
    if (!handle.ok()) {
      std::printf("register %-18s -> %s\n", name,
                  handle.status().ToString().c_str());
      return;
    }
    tenant->handle = *handle;
    tenants.push_back(std::move(tenant));
    std::printf("register %-18s -> ok (query id %llu)\n", name,
                static_cast<unsigned long long>(tenants.back()->handle.id()));
  };

  const EventTypeRegistry& registry = history.registry;
  add("rising-chain", QuerySpec::Simple(
                          PatternBuilder(OperatorKind::kSeq, registry)
                              .Event("A", "a")
                              .Event("B", "b")
                              .Event("C", "c")
                              .Where("a", "v", CmpOp::kLt, "c", "v")
                              .Within(1.0)
                              .Build())
                          .Keyed()
                          .WithAlgorithm("GREEDY"));
  add("reversal", QuerySpec::Simple(
                      PatternBuilder(OperatorKind::kSeq, registry)
                          .Event("C", "c")
                          .Event("B", "b")
                          .Event("A", "a")
                          .Where("c", "v", CmpOp::kGt, "a", "v")
                          .Within(0.5)
                          .Build())
                      .Keyed()
                      .WithAlgorithm("DP-LD"));
  add("spike-pair", QuerySpec::Simple(
                        PatternBuilder(OperatorKind::kAnd, registry)
                            .Event("A", "a")
                            .Event("B", "b")
                            .WhereConst("a", "v", CmpOp::kGt, 0.8)
                            .WhereConst("b", "v", CmpOp::kGt, 0.8)
                            .Within(0.2)
                            .Build())
                        .Keyed()
                        .WithAlgorithm("TRIVIAL"));
  // Unkeyed tenant: watches for cross-partition coincidences in a tiny
  // window, planned from the same history through the service's
  // collector.
  add("global-burst", QuerySpec::Simple(
                          PatternBuilder(OperatorKind::kSeq, registry)
                              .Event("A", "a")
                              .Event("C", "c")
                              .Where("a", "v", CmpOp::kLt, "c", "v")
                              .Within(0.01)
                              .Build())
                          .WithAlgorithm("EFREQ"));
  // A misconfigured tenant: the typo is a returned error, nothing dies.
  add("typo-tenant", QuerySpec::Simple(history.pattern)
                         .Keyed()
                         .WithAlgorithm("GREEDDY"));

  // One shared async feed: the live stream arrives as three interleaved
  // slices (think three upstream brokers), parsed on dedicated ingest
  // threads, merged in timestamp order, and fanned to every tenant in
  // one routing pass.
  std::vector<std::unique_ptr<StreamSource>> sources;
  for (size_t i = 0; i < 3; ++i) {
    sources.push_back(
        std::make_unique<EventStreamSource>(&live.stream, i, 3));
  }
  IngestResult ingested = service->ProcessSourceAsync(std::move(sources));
  if (!ingested.ok) {
    std::printf("ingest failed at source %zu: %s\n", ingested.failed_source,
                ingested.error.c_str());
    return 1;
  }
  service->Finish();

  std::printf("\n%zu tenants served %llu events in one pass (%zu worker "
              "threads):\n\n",
              tenants.size(),
              static_cast<unsigned long long>(ingested.events),
              service->num_threads());
  for (const auto& tenant : tenants) {
    EngineCounters counters = tenant->handle.counters().value();
    auto partitions = tenant->handle.num_partitions();
    std::printf("%-18s matches=%-6zu partial-matches=%-8llu %s\n",
                tenant->name, tenant->sink.matches.size(),
                static_cast<unsigned long long>(counters.instances_created),
                partitions.ok()
                    ? ("partitions=" + std::to_string(*partitions)).c_str()
                    : "(unkeyed)");
  }
  return 0;
}
