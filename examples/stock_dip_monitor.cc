// Domain example: monitor relative stock movements with negation and
// Kleene closure — "a Microsoft dip, NOT followed by a Google recovery,
// then a run of one-or-more strong Intel upticks" — the kind of
// composite pattern the paper's Section 2 taxonomy covers.

#include <cstdio>

#include "api/cep_runtime.h"
#include "workload/stock_generator.h"

using namespace cepjoin;

int main() {
  StockGeneratorConfig gen;
  gen.num_symbols = 6;
  gen.duration_seconds = 60.0;
  gen.seed = 99;
  StockUniverse universe = GenerateStockStream(gen);
  // Name three symbols for readability.
  const char* msft = "STK000";
  const char* goog = "STK001";
  const char* intc = "STK002";

  SimplePattern pattern =
      PatternBuilder(OperatorKind::kSeq, universe.registry)
          .Event(msft, "m")
          .NegatedEvent(goog, "g")
          .KleeneEvent(intc, "i")
          .WhereConst("m", "difference", CmpOp::kLt, -0.5)  // MSFT dips
          .WhereConst("g", "difference", CmpOp::kGt, 0.5)   // GOOG recovery
          .WhereConst("i", "difference", CmpOp::kGt, 1.0)   // strong upticks
          .Within(2.0)
          .Build();
  std::printf("pattern: %s\n\n", pattern.Describe(&universe.registry).c_str());

  StatsCollector collector(universe.stream, universe.registry.size());
  PatternStats stats = collector.CollectForPattern(pattern);
  std::printf("plan-time statistics (note the Kleene power-set rate of "
              "Theorem 4):\n%s\n", stats.Describe().c_str());

  CollectingSink sink;
  RuntimeOptions options;
  options.algorithm = "GREEDY";
  CepRuntime runtime(pattern, stats, options, &sink);
  std::printf("plan: %s\n", runtime.DescribePlans().c_str());
  runtime.ProcessStream(universe.stream);
  runtime.Finish();

  std::printf("matches: %zu\n", sink.matches.size());
  size_t shown = 0;
  for (const Match& m : sink.matches) {
    if (++shown > 5) break;
    std::printf("  MSFT dip @%.2fs, %zu INTC uptick(s):", m.slots[0][0]->ts,
                m.slots[2].size());
    for (const EventPtr& e : m.slots[2]) std::printf(" @%.2fs", e->ts);
    std::printf("  (no GOOG recovery in between)\n");
  }
  if (sink.matches.size() > shown) std::printf("  ...\n");
  return 0;
}
