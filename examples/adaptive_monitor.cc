// Adaptive monitoring (Sec. 6.3): the stream's statistics drift halfway
// through — a rare symbol becomes frequent and vice versa — and the
// adaptive runtime re-optimizes its evaluation plan on the fly while
// delivering exactly the same matches a static engine would.

#include <cstdio>

#include "adaptive/adaptive_runtime.h"
#include "common/rng.h"
#include "nfa/nfa_engine.h"

using namespace cepjoin;

int main() {
  EventTypeRegistry registry;
  TypeId a = registry.Register("A", {"v"});
  TypeId b = registry.Register("B", {"v"});
  TypeId c = registry.Register("C", {"v"});

  // Build a drifting stream: A rare then frequent; C frequent then rare.
  Rng rng(1234);
  EventStream stream;
  double ts = 0.0;
  const double duration = 60.0;
  while (ts < duration) {
    ts += rng.UniformReal(0.002, 0.01);
    bool first_half = ts < duration / 2;
    double coin = rng.UniformReal(0, 1);
    TypeId type = coin < 0.08 ? (first_half ? a : c)
                  : coin < 0.5 ? b
                               : (first_half ? c : a);
    Event e;
    e.type = type;
    e.ts = ts;
    e.attrs = {rng.UniformReal(-1, 1)};
    stream.Append(e);
  }

  SimplePattern pattern = PatternBuilder(OperatorKind::kSeq, registry)
                              .Event("A", "a")
                              .Event("B", "b")
                              .Event("C", "c")
                              .Within(0.5)
                              .Build();
  std::printf("pattern: %s\n", pattern.Describe(&registry).c_str());
  std::printf("stream: %zu events, statistics invert at t=%.0fs\n\n",
              stream.size(), duration / 2);

  // Static reference.
  CollectingSink static_sink;
  NfaEngine static_engine(pattern, OrderPlan::Identity(3), &static_sink);
  for (const EventPtr& e : stream.events()) static_engine.OnEvent(e);
  static_engine.Finish();

  // Adaptive runtime.
  CollectingSink adaptive_sink;
  AdaptiveOptions options;
  options.algorithm = "GREEDY";
  options.evaluation_interval = 3.0;
  options.stats_half_life = 4.0;
  AdaptiveRuntime runtime(pattern, registry.size(), options, &adaptive_sink);
  runtime.ProcessStream(stream);
  runtime.Finish();

  std::printf("adaptive: %d plan re-optimizations, final plan %s\n",
              runtime.reoptimization_count(),
              runtime.current_plan().Describe().c_str());
  std::printf("matches: adaptive=%zu static=%zu (must be identical: %s)\n",
              adaptive_sink.matches.size(), static_sink.matches.size(),
              adaptive_sink.Fingerprints() == static_sink.Fingerprints()
                  ? "yes"
                  : "NO — BUG");
  std::printf("peak partial matches under the adaptive runtime: %zu\n",
              runtime.counters().peak_live_instances);
  return 0;
}
