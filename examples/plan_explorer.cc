// Plan explorer: shows, for one pattern, the evaluation plan every
// algorithm produces, its model-predicted cost, and measured runtime
// metrics side by side — a miniature of the paper's whole evaluation.

#include <cstdio>

#include "api/cep_runtime.h"
#include "metrics/runner.h"
#include "metrics/table.h"
#include "optimizer/registry.h"
#include "workload/pattern_generator.h"
#include "workload/stock_generator.h"

using namespace cepjoin;

int main(int argc, char** argv) {
  int size = argc > 1 ? std::atoi(argv[1]) : 5;
  if (size < 2 || size > 10) size = 5;

  StockGeneratorConfig gen;
  gen.num_symbols = 12;
  gen.max_rate = 12.0;
  gen.duration_seconds = 30.0;
  StockUniverse universe = GenerateStockStream(gen);
  StatsCollector collector(universe.stream, universe.registry.size());

  PatternGenConfig pg;
  pg.family = PatternFamily::kSequence;
  pg.size = size;
  pg.window = 0.8;
  pg.seed = 11;
  SimplePattern pattern = GeneratePattern(universe, pg)[0];
  std::printf("pattern: %s\n\n", pattern.Describe(&universe.registry).c_str());

  PatternStats stats = collector.CollectForPattern(pattern);
  CostFunction cost = MakeCostFunction(pattern, stats, 0.0);

  Table table({"algorithm", "class", "plan", "predicted cost",
               "throughput[ev/s]", "peak partials", "matches"});
  std::vector<std::string> algorithms = PaperOrderAlgorithms();
  algorithms.push_back("KBZ");
  for (const std::string& name : PaperTreeAlgorithms()) {
    algorithms.push_back(name);
  }
  for (const std::string& name : algorithms) {
    EnginePlan plan = MakePlan(name, cost).value();
    RunResult result = Execute(pattern, plan, universe.stream);
    table.AddRow({name, plan.kind == EnginePlan::Kind::kOrder ? "order" : "tree",
                  plan.kind == EnginePlan::Kind::kOrder
                      ? plan.order.Describe()
                      : plan.tree.Describe(),
                  FormatSi(plan.cost), FormatSi(result.throughput_eps),
                  std::to_string(result.peak_instances),
                  std::to_string(result.matches)});
  }
  table.Print();
  std::printf("\nAll algorithms detect identical matches; only cost and "
              "resource usage differ.\n");
  return 0;
}
