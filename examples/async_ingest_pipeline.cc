// Async ingestion walkthrough: replay one keyed stream through the
// sharded runtime twice —
//
//   1. synchronously: the materialized EventStream pushed from the
//      caller's thread (ProcessStream), and
//   2. asynchronously: the same events split into two CSV feeds (even
//      and odd partitions, as an exchange might shard symbol ranges),
//      each parsed incrementally on its own ingestion thread by a
//      StreamingCsvSource, k-way merged in timestamp order, and routed
//      from the caller's thread (ProcessSourceAsync)
//
// — and show that the match sets are identical: ingestion threading is
// invisible in the output, it only moves parsing off the router thread.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/keyed_runtime.h"
#include "event/streaming_csv_source.h"
#include "workload/keyed_generator.h"

using namespace cepjoin;

namespace {

// Formats one generated event as a CSV row (type,ts,partition,v).
std::string CsvRow(const EventTypeRegistry& registry, const Event& e) {
  // %.17g round-trips doubles exactly, so the async CSV replay evaluates
  // predicates on bit-identical values — the sync/async equality below
  // is structural, not rounding luck.
  char row[96];
  std::snprintf(row, sizeof(row), "%s,%.17g,%u,%.17g\n",
                registry.Info(e.type).name.c_str(), e.ts, e.partition,
                e.attrs[0]);
  return row;
}

}  // namespace

int main() {
  // A keyed workload: SEQ(A a, B b, C c) WHERE a.v < c.v over 16
  // partitions with per-partition type skew. The history stream doubles
  // as the planning statistics.
  KeyedWorkload workload = MakeKeyedWorkload(16, 8.0, 7);
  std::printf("stream: %zu events, 16 partitions, pattern %s\n",
              workload.stream.size(),
              workload.pattern.Describe(&workload.registry).c_str());

  // --- synchronous reference -------------------------------------------
  RuntimeOptions options;
  options.algorithm = "GREEDY";
  options.num_threads = 4;
  CollectingSink sync_sink;
  {
    KeyedCepRuntime runtime(workload.pattern, workload.stream,
                            workload.registry.size(), options, &sync_sink);
    runtime.ProcessStream(workload.stream);
    runtime.Finish();
  }
  std::printf("sync:   %zu matches (4 shard threads, caller ingests)\n",
              sync_sink.matches.size());

  // --- async ingestion --------------------------------------------------
  // Shard the stream into two CSV feeds by partition parity; each feed
  // is timestamp-ordered, so the pipeline's merge reconstructs the
  // global order deterministically.
  std::string even_csv = "type,ts,partition,v\n";
  std::string odd_csv = even_csv;
  for (const EventPtr& e : workload.stream.events()) {
    (e->partition % 2 == 0 ? even_csv : odd_csv) +=
        CsvRow(workload.registry, *e);
  }

  options.num_ingest_threads = 2;  // one parser thread per feed
  CollectingSink async_sink;
  KeyedCepRuntime runtime(workload.pattern, workload.stream,
                          workload.registry.size(), options, &async_sink);
  // Read-only registry mode: both sources resolve type names against the
  // shared registry concurrently without mutating it.
  const EventTypeRegistry* registry = &workload.registry;
  std::vector<std::unique_ptr<StreamSource>> sources;
  sources.push_back(
      std::make_unique<StringCsvSource>(std::move(even_csv), registry));
  sources.push_back(
      std::make_unique<StringCsvSource>(std::move(odd_csv), registry));
  IngestResult ingested = runtime.ProcessSourceAsync(std::move(sources));
  if (!ingested.ok) {
    std::fprintf(stderr, "ingest failed (source %zu): %s\n",
                 ingested.failed_source, ingested.error.c_str());
    return 1;
  }
  runtime.Finish();
  std::printf(
      "async:  %zu matches (2 CSV parser threads -> timestamp merge -> "
      "4 shard threads), %llu events ingested\n",
      async_sink.matches.size(),
      static_cast<unsigned long long>(ingested.events));

  bool identical = sync_sink.Fingerprints() == async_sink.Fingerprints();
  std::printf("match sets identical: %s\n", identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
